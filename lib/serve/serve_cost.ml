(* Service-time oracle: model name -> simulated cycles, through the
   real compile+simulate pipeline, memoised per (engine-config, layer,
   batch). *)

type t = {
  oc_models : (string * Tune_workload.named list) list;
  oc_graphs : (string * Graph_ir.t) list;
  oc_graph_residency : bool;
  oc_memo : (string, float) Hashtbl.t;
  mutable oc_hits : int;
  mutable oc_misses : int;
}

let models_of_specs ?(rows = 2) ?(seq = 128) specs =
  let resolve spec =
    match spec with
    | "resnet18" -> Ok (Tune_workload.resnet18_layers ~rows ())
    | "tinybert" -> Ok (Tune_workload.tinybert_layers ~seq ())
    | _ -> Tune_workload.of_spec spec
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
      match resolve spec with
      | Ok layers -> go ((spec, layers) :: acc) rest
      | Error msg -> Error msg)
  in
  match specs with
  | [] -> Error "at least one workload spec is required"
  | _ -> go [] specs

let create ?(graphs = []) ?(graph_residency = true) models =
  {
    oc_models = models;
    oc_graphs = graphs;
    oc_graph_residency = graph_residency;
    oc_memo = Hashtbl.create 16;
    oc_hits = 0;
    oc_misses = 0;
  }

let models t = List.map fst t.oc_models @ List.map fst t.oc_graphs

let memo_stats t = (t.oc_hits, t.oc_misses)

let layers t model =
  match List.assoc_opt model t.oc_models with
  | Some layers -> layers
  | None ->
    failwith
      (Printf.sprintf "serving oracle: unknown model %S (models: %s)" model
         (String.concat ", " (models t)))

let matmul_accel () = Presets.matmul ~version:Accel_matmul.V4 ~size:16 ()

(* Engine-config fingerprints ({!Benchdiff.config_hash} over the
   canonical config JSON): part of every memo key, so a memoised cycle
   count can never be served for a measurement taken under a different
   accelerator configuration. *)
let matmul_fingerprint =
  lazy (Benchdiff.config_hash (Accel_config.to_json (matmul_accel ())))

let conv_fingerprint =
  lazy (Benchdiff.config_hash (Accel_config.to_json (Presets.conv ~flow:"Os" ())))

let fingerprint (w : Tune_workload.t) =
  Lazy.force
    (match w with
    | Tune_workload.Matmul _ -> matmul_fingerprint
    | Tune_workload.Conv _ -> conv_fingerprint)

(* Canonical-shape memo key: engine fingerprint + the workload's
   canonical dimension list + batch. *)
let memo_key (w : Tune_workload.t) ~batch =
  Printf.sprintf "%s|%s:%s@%d" (fingerprint w)
    (if Tune_workload.is_conv w then "conv" else "matmul")
    (String.concat "," (List.map string_of_int (Tune_workload.dims w)))
    batch

let memoised t key compute =
  match Hashtbl.find_opt t.oc_memo key with
  | Some c ->
    t.oc_hits <- t.oc_hits + 1;
    Metrics.incr "serve.oracle_hits";
    c
  | None ->
    t.oc_misses <- t.oc_misses + 1;
    Metrics.incr "serve.oracle_misses";
    let c = compute () in
    Hashtbl.add t.oc_memo key c;
    c

(* The Sec. IV-C "Best" selection, as exp_fig17 applies it: override
   flow and tiles when a feasible choice exists, otherwise let the
   pipeline fall back to its defaults. *)
let best_options accel ~m ~n ~k =
  match Heuristics.best accel ~m ~n ~k with
  | Some c ->
    {
      Axi4mlir.default_codegen with
      flow = Some c.Heuristics.flow;
      tiles = Some [ c.Heuristics.tm; c.Heuristics.tn; c.Heuristics.tk ];
    }
  | None -> Axi4mlir.default_codegen

let measure_workload (w : Tune_workload.t) ~batch =
  match w with
  | Tune_workload.Matmul { m; n; k } ->
    (* batching stacks the batch's activation rows: m -> batch * m with
       the weight operand B shared across the batch *)
    let m = m * batch in
    let accel = matmul_accel () in
    let bench = Axi4mlir.create accel in
    let options = best_options accel ~m ~n ~k in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
    let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
    let counters =
      Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
    in
    counters.Perf_counters.cycles
  | Tune_workload.Conv { ic; ih; iw; oc; fhw; stride } ->
    (* batching is the image dimension: n -> batch *)
    let n = batch in
    let bench = Axi4mlir.create (Presets.conv ~flow:"Os" ()) in
    let i, w_, o =
      Axi4mlir.alloc_conv_operands ~stride bench ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw
    in
    let ir = Axi4mlir.build_conv_module ~stride ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw () in
    let compiled = Axi4mlir.compile bench ir in
    let counters =
      Axi4mlir.measure bench (fun () ->
          Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
            "conv_call"
            [ Interp.M i; Interp.M w_; Interp.M o ])
    in
    counters.Perf_counters.cycles

let measure_layer (named : Tune_workload.named) ~batch =
  let w = named.Tune_workload.wl_workload in
  match measure_workload w ~batch with
  | cycles -> cycles
  | exception Pass.Pass_failure { pass; message; _ } ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): pass %s: %s"
         (Tune_workload.to_string w) batch pass message)
  | exception Interp.Runtime_error msg ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): runtime: %s"
         (Tune_workload.to_string w) batch msg)
  | exception Failure msg ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): %s" (Tune_workload.to_string w)
         batch msg)

let graph_key t g ~batch =
  Printf.sprintf "graph:%s|residency=%b@%d" g.Graph_ir.g_name t.oc_graph_residency
    batch

let measure_graph t g ~batch =
  match Graph_exec.run ~batch ~residency:t.oc_graph_residency g with
  | r -> r.Graph_exec.rs_counters.Perf_counters.cycles
  | exception Failure msg ->
    failwith
      (Printf.sprintf "serving oracle: graph %s (batch %d): %s" g.Graph_ir.g_name
         batch msg)

let service t model ~batch =
  if batch < 1 then
    failwith (Printf.sprintf "serving oracle: batch must be >= 1 (got %d)" batch);
  match List.assoc_opt model t.oc_graphs with
  | Some g -> memoised t (graph_key t g ~batch) (fun () -> measure_graph t g ~batch)
  | None ->
    let layers = layers t model in
    List.fold_left
      (fun acc (named : Tune_workload.named) ->
        let w = named.Tune_workload.wl_workload in
        acc +. memoised t (memo_key w ~batch) (fun () -> measure_layer named ~batch))
      0.0 layers

(* SJF only needs a ranking, not calibrated cycles: matmul layers get
   the cost model's real estimate ({!Heuristics.estimate_cycles} via
   [best]); conv layers use {!Heuristics.estimate_conv_cycles}, the
   calibrated cycles-per-MAC proxy for the engine's DMA-bound regime.
   A residual conv bias merely reorders the queue — every policy stays
   work-conserving. *)
let predict_workload (w : Tune_workload.t) =
  match w with
  | Tune_workload.Matmul { m; n; k } -> (
    match Heuristics.best (matmul_accel ()) ~m ~n ~k with
    | Some c -> c.Heuristics.predicted_cycles
    | None -> 2.0 *. float_of_int (Tune_workload.macs w))
  | Tune_workload.Conv _ -> Heuristics.estimate_conv_cycles ~macs:(Tune_workload.macs w)

let predict_graph g =
  Array.fold_left
    (fun acc nd ->
      match Graph_ir.node_workload g nd with
      | Some w -> acc +. predict_workload w
      | None -> acc)
    0.0 g.Graph_ir.g_nodes

let predict t model =
  let key = "predict:" ^ model in
  memoised t key (fun () ->
      match List.assoc_opt model t.oc_graphs with
      | Some g -> predict_graph g
      | None ->
        List.fold_left
          (fun acc (named : Tune_workload.named) ->
            acc +. predict_workload named.Tune_workload.wl_workload)
          0.0 (layers t model))
