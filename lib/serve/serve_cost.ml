(* Service-time oracle: model name -> simulated cycles, through the
   real compile+simulate pipeline, memoised per (engine-config, layer,
   batch). The matmul engine is configurable so a heterogeneous
   platform can cost each instance with its own engine; the conv
   engine is the fixed Sec. IV-D sidecar on every instance. *)

type t = {
  oc_accel : Accel_config.t;  (** the matmul engine this oracle costs with *)
  oc_models : (string * Tune_workload.named list) list;
  oc_graphs : (string * Graph_ir.t) list;
  oc_graph_residency : bool;
  oc_memo : (string, float * float) Hashtbl.t;
      (** key -> (cycles, dma_words moved by the measured run) *)
  mutable oc_hits : int;
  mutable oc_misses : int;
}

let models_of_specs ?(rows = 2) ?(seq = 128) specs =
  let resolve spec =
    match spec with
    | "resnet18" -> Ok (Tune_workload.resnet18_layers ~rows ())
    | "tinybert" -> Ok (Tune_workload.tinybert_layers ~seq ())
    | _ -> Tune_workload.of_spec spec
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
      match resolve spec with
      | Ok layers -> go ((spec, layers) :: acc) rest
      | Error msg -> Error msg)
  in
  match specs with
  | [] -> Error "at least one workload spec is required"
  | _ -> go [] specs

let default_matmul_accel () = Presets.matmul ~version:Accel_matmul.V4 ~size:16 ()

let create ?matmul_accel ?(graphs = []) ?(graph_residency = true) models =
  {
    oc_accel =
      (match matmul_accel with Some a -> a | None -> default_matmul_accel ());
    oc_models = models;
    oc_graphs = graphs;
    oc_graph_residency = graph_residency;
    oc_memo = Hashtbl.create 16;
    oc_hits = 0;
    oc_misses = 0;
  }

let models t = List.map fst t.oc_models @ List.map fst t.oc_graphs

let matmul_accel t = t.oc_accel

let memo_stats t = (t.oc_hits, t.oc_misses)

let layers t model =
  match List.assoc_opt model t.oc_models with
  | Some layers -> layers
  | None ->
    failwith
      (Printf.sprintf "serving oracle: unknown model %S (models: %s)" model
         (String.concat ", " (models t)))

(* Engine-config fingerprints ({!Benchdiff.config_hash} over the
   canonical config JSON): part of every memo key, so a memoised cycle
   count can never be served for a measurement taken under a different
   accelerator configuration. *)
let fingerprint_of config = Benchdiff.config_hash (Accel_config.to_json config)

let conv_fingerprint =
  lazy (fingerprint_of (Presets.conv ~flow:"Os" ()))

let fingerprint t (w : Tune_workload.t) =
  match w with
  | Tune_workload.Matmul _ -> fingerprint_of t.oc_accel
  | Tune_workload.Conv _ -> Lazy.force conv_fingerprint

(* Canonical-shape memo key: engine fingerprint + the workload's
   canonical dimension list + batch. *)
let memo_key t (w : Tune_workload.t) ~batch =
  Printf.sprintf "%s|%s:%s@%d" (fingerprint t w)
    (if Tune_workload.is_conv w then "conv" else "matmul")
    (String.concat "," (List.map string_of_int (Tune_workload.dims w)))
    batch

let memoised t key compute =
  match Hashtbl.find_opt t.oc_memo key with
  | Some c ->
    t.oc_hits <- t.oc_hits + 1;
    Metrics.incr "serve.oracle_hits";
    c
  | None ->
    t.oc_misses <- t.oc_misses + 1;
    Metrics.incr "serve.oracle_misses";
    let c = compute () in
    Hashtbl.add t.oc_memo key c;
    c

(* The Sec. IV-C "Best" selection, as exp_fig17 applies it: override
   flow and tiles when a feasible choice exists, otherwise let the
   pipeline fall back to its defaults. *)
let best_options accel ~m ~n ~k =
  match Heuristics.best accel ~m ~n ~k with
  | Some c ->
    (* tile overrides are a flexible-engine (v4) feature; fixed-geometry
       engines always tile by their own size *)
    let tiles =
      if accel.Accel_config.flexible then
        Some [ c.Heuristics.tm; c.Heuristics.tn; c.Heuristics.tk ]
      else None
    in
    { Axi4mlir.default_codegen with flow = Some c.Heuristics.flow; tiles }
  | None -> Axi4mlir.default_codegen

let counter_parts (counters : Perf_counters.t) =
  ( counters.Perf_counters.cycles,
    counters.Perf_counters.dma_words_sent +. counters.Perf_counters.dma_words_received )

let measure_workload t (w : Tune_workload.t) ~batch =
  match w with
  | Tune_workload.Matmul { m; n; k } ->
    (* batching stacks the batch's activation rows: m -> batch * m with
       the weight operand B shared across the batch *)
    let m = m * batch in
    let accel = t.oc_accel in
    let bench = Axi4mlir.create accel in
    let options = best_options accel ~m ~n ~k in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
    let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
    let counters =
      Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
    in
    counter_parts counters
  | Tune_workload.Conv { ic; ih; iw; oc; fhw; stride } ->
    (* batching is the image dimension: n -> batch *)
    let n = batch in
    let bench = Axi4mlir.create (Presets.conv ~flow:"Os" ()) in
    let i, w_, o =
      Axi4mlir.alloc_conv_operands ~stride bench ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw
    in
    let ir = Axi4mlir.build_conv_module ~stride ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw () in
    let compiled = Axi4mlir.compile bench ir in
    let counters =
      Axi4mlir.measure bench (fun () ->
          Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
            "conv_call"
            [ Interp.M i; Interp.M w_; Interp.M o ])
    in
    counter_parts counters

let measure_layer t (named : Tune_workload.named) ~batch =
  let w = named.Tune_workload.wl_workload in
  match measure_workload t w ~batch with
  | parts -> parts
  | exception Pass.Pass_failure { pass; message; _ } ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): pass %s: %s"
         (Tune_workload.to_string w) batch pass message)
  | exception Interp.Runtime_error msg ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): runtime: %s"
         (Tune_workload.to_string w) batch msg)
  | exception Failure msg ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): %s" (Tune_workload.to_string w)
         batch msg)

let graph_key t g ~batch =
  Printf.sprintf "graph:%s|residency=%b@%d" g.Graph_ir.g_name t.oc_graph_residency
    batch

let measure_graph t g ~batch =
  match Graph_exec.run ~batch ~residency:t.oc_graph_residency g with
  | r -> counter_parts r.Graph_exec.rs_counters
  | exception Failure msg ->
    failwith
      (Printf.sprintf "serving oracle: graph %s (batch %d): %s" g.Graph_ir.g_name
         batch msg)

let service_parts t model ~batch =
  if batch < 1 then
    failwith (Printf.sprintf "serving oracle: batch must be >= 1 (got %d)" batch);
  match List.assoc_opt model t.oc_graphs with
  | Some g -> memoised t (graph_key t g ~batch) (fun () -> measure_graph t g ~batch)
  | None ->
    let layers = layers t model in
    List.fold_left
      (fun (cyc, words) (named : Tune_workload.named) ->
        let w = named.Tune_workload.wl_workload in
        let c, dw =
          memoised t (memo_key t w ~batch) (fun () -> measure_layer t named ~batch)
        in
        (cyc +. c, words +. dw))
      (0.0, 0.0) layers

let service t model ~batch = fst (service_parts t model ~batch)

(* SJF only needs a ranking, not calibrated cycles: matmul layers get
   the cost model's real estimate ({!Heuristics.estimate_cycles} via
   [best]); conv layers use {!Heuristics.estimate_conv_cycles}, the
   calibrated cycles-per-MAC proxy for the engine's DMA-bound regime.
   A residual conv bias merely reorders the queue — every policy stays
   work-conserving. *)
let predict_workload t (w : Tune_workload.t) =
  match w with
  | Tune_workload.Matmul { m; n; k } -> (
    match Heuristics.best t.oc_accel ~m ~n ~k with
    | Some c -> c.Heuristics.predicted_cycles
    | None -> 2.0 *. float_of_int (Tune_workload.macs w))
  | Tune_workload.Conv _ -> Heuristics.estimate_conv_cycles ~macs:(Tune_workload.macs w)

let predict_graph t g =
  Array.fold_left
    (fun acc nd ->
      match Graph_ir.node_workload g nd with
      | Some w -> acc +. predict_workload t w
      | None -> acc)
    0.0 g.Graph_ir.g_nodes

let predict t model =
  let key = "predict:" ^ model in
  fst
    (memoised t key (fun () ->
         let p =
           match List.assoc_opt model t.oc_graphs with
           | Some g -> predict_graph t g
           | None ->
             List.fold_left
               (fun acc (named : Tune_workload.named) ->
                 acc +. predict_workload t named.Tune_workload.wl_workload)
               0.0 (layers t model)
         in
         (p, 0.0)))
