(* Service-time oracle: model name -> simulated cycles, through the
   real compile+simulate pipeline, memoised per (layer, batch). *)

type t = {
  oc_models : (string * Tune_workload.named list) list;
  oc_memo : (string, float) Hashtbl.t;
}

let models_of_specs ?(rows = 2) ?(seq = 128) specs =
  let resolve spec =
    match spec with
    | "resnet18" -> Ok (Tune_workload.resnet18_layers ~rows ())
    | "tinybert" -> Ok (Tune_workload.tinybert_layers ~seq ())
    | _ -> Tune_workload.of_spec spec
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
      match resolve spec with
      | Ok layers -> go ((spec, layers) :: acc) rest
      | Error msg -> Error msg)
  in
  match specs with
  | [] -> Error "at least one workload spec is required"
  | _ -> go [] specs

let create models = { oc_models = models; oc_memo = Hashtbl.create 16 }

let models t = List.map fst t.oc_models

let layers t model =
  match List.assoc_opt model t.oc_models with
  | Some layers -> layers
  | None ->
    failwith
      (Printf.sprintf "serving oracle: unknown model %S (models: %s)" model
         (String.concat ", " (models t)))

let matmul_accel () = Presets.matmul ~version:Accel_matmul.V4 ~size:16 ()

(* The Sec. IV-C "Best" selection, as exp_fig17 applies it: override
   flow and tiles when a feasible choice exists, otherwise let the
   pipeline fall back to its defaults. *)
let best_options accel ~m ~n ~k =
  match Heuristics.best accel ~m ~n ~k with
  | Some c ->
    {
      Axi4mlir.default_codegen with
      flow = Some c.Heuristics.flow;
      tiles = Some [ c.Heuristics.tm; c.Heuristics.tn; c.Heuristics.tk ];
    }
  | None -> Axi4mlir.default_codegen

let measure_workload (w : Tune_workload.t) ~batch =
  match w with
  | Tune_workload.Matmul { m; n; k } ->
    (* batching stacks the batch's activation rows: m -> batch * m with
       the weight operand B shared across the batch *)
    let m = m * batch in
    let accel = matmul_accel () in
    let bench = Axi4mlir.create accel in
    let options = best_options accel ~m ~n ~k in
    let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
    let ir = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
    let counters =
      Axi4mlir.measure bench (fun () -> Axi4mlir.run_matmul bench ~options ir ~a ~b ~c)
    in
    counters.Perf_counters.cycles
  | Tune_workload.Conv { ic; ih; iw; oc; fhw; stride } ->
    (* batching is the image dimension: n -> batch *)
    let n = batch in
    let bench = Axi4mlir.create (Presets.conv ~flow:"Os" ()) in
    let i, w_, o =
      Axi4mlir.alloc_conv_operands ~stride bench ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw
    in
    let ir = Axi4mlir.build_conv_module ~stride ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw () in
    let compiled = Axi4mlir.compile bench ir in
    let counters =
      Axi4mlir.measure bench (fun () ->
          Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
            "conv_call"
            [ Interp.M i; Interp.M w_; Interp.M o ])
    in
    counters.Perf_counters.cycles

let measure_layer (named : Tune_workload.named) ~batch =
  let w = named.Tune_workload.wl_workload in
  match measure_workload w ~batch with
  | cycles -> cycles
  | exception Pass.Pass_failure { pass; message; _ } ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): pass %s: %s"
         (Tune_workload.to_string w) batch pass message)
  | exception Interp.Runtime_error msg ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): runtime: %s"
         (Tune_workload.to_string w) batch msg)
  | exception Failure msg ->
    failwith
      (Printf.sprintf "serving oracle: %s (batch %d): %s" (Tune_workload.to_string w)
         batch msg)

let service t model ~batch =
  if batch < 1 then
    failwith (Printf.sprintf "serving oracle: batch must be >= 1 (got %d)" batch);
  let layers = layers t model in
  List.fold_left
    (fun acc (named : Tune_workload.named) ->
      let key =
        Printf.sprintf "%s@%d" (Tune_workload.to_string named.Tune_workload.wl_workload)
          batch
      in
      let cycles =
        match Hashtbl.find_opt t.oc_memo key with
        | Some c -> c
        | None ->
          let c = measure_layer named ~batch in
          Hashtbl.add t.oc_memo key c;
          c
      in
      acc +. cycles)
    0.0 layers

(* SJF only needs a ranking, not calibrated cycles: matmul layers get
   the cost model's real estimate ({!Heuristics.estimate_cycles} via
   [best]); the conv engine has no Heuristics entry, so conv layers
   use a MAC-count proxy scaled to the engine's DMA-bound regime
   (~16 driver cycles per MAC on the row-sampled proxies — the Os flow
   re-sends the input slice per output channel, so transfers dominate
   the 3x3 granule's arithmetic). A residual conv bias merely reorders
   the queue — every policy stays work-conserving. *)
let conv_cycles_per_mac = 16.0

let predict_workload (w : Tune_workload.t) =
  match w with
  | Tune_workload.Matmul { m; n; k } -> (
    match Heuristics.best (matmul_accel ()) ~m ~n ~k with
    | Some c -> c.Heuristics.predicted_cycles
    | None -> 2.0 *. float_of_int (Tune_workload.macs w))
  | Tune_workload.Conv _ -> conv_cycles_per_mac *. float_of_int (Tune_workload.macs w)

let predict t model =
  let layers = layers t model in
  let key = "predict:" ^ model in
  match Hashtbl.find_opt t.oc_memo key with
  | Some c -> c
  | None ->
    let c =
      List.fold_left
        (fun acc (named : Tune_workload.named) ->
          acc +. predict_workload named.Tune_workload.wl_workload)
        0.0 layers
    in
    Hashtbl.add t.oc_memo key c;
    c
