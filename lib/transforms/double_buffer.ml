(* Software-pipelines the innermost transfer loop of a function whose
   [accel.dma_init] carries the Sec. V [double_buffer] attribute: the
   loop is fully unrolled, every flush-marked send chain is re-based
   onto alternating halves of the DMA input region (ping/pong staging)
   and turned into an [accel.start_send] returning an [!accel.token],
   and the matching [accel.wait] is deferred until the same half is
   about to be refilled two chains later. A trailing [accel.recv] (the
   fused compute+drain flows) becomes a [start_recv]/[wait] pair whose
   start is interleaved with the next iteration's sends, so tile i+1's
   transfer overlaps tile i's compute. The prologue is the first
   iteration's send block, the epilogue the last iteration's drain plus
   the residual token waits.

   The pass is self-gating: without the attribute (or when a loop fails
   the legality checks below, reported as Missed remarks) the IR passes
   through untouched, keeping the blocking path bit-identical. *)

let pass_name = "double-buffer"

let is_send_like (o : Ir.op) =
  match o.Ir.name with
  | "accel.sendLiteral" | "accel.send" | "accel.sendDim" | "accel.sendIdx" -> true
  | _ -> false

(* Ops we know how to clone: pure index/address arithmetic. Anything
   else (calls, stores, nested control flow) blocks the rewrite. *)
let is_clonable_pure (o : Ir.op) =
  match o.Ir.name with
  | "arith.constant" | "arith.addi" | "arith.subi" | "arith.muli" | "arith.index_cast"
  | "memref.subview" ->
    true
  | _ -> false

let missed ~name fmt =
  Printf.ksprintf
    (fun msg -> Remarks.emit ~kind:Remarks.Missed ~pass:pass_name ~name ~loc:"scf.for" msg)
    fmt

let const_int defs (v : Ir.value) =
  match Hashtbl.find_opt defs v.Ir.vid with
  | Some (o : Ir.op) when o.Ir.name = "arith.constant" -> (
    match Ir.attr o "value" with Some (Attribute.Int n) -> Some n | _ -> None)
  | _ -> None

(* Words one send-like op stages: data sends stream the whole tile,
   scalar sends (literal / dim / idx) stage one word. *)
let words_of_send_like (o : Ir.op) =
  match o.Ir.name with
  | "accel.send" -> (
    match o.Ir.operands with
    | src :: _ -> (
      match src.Ir.vty with
      | Ty.Memref m -> List.fold_left ( * ) 1 m.Ty.shape
      | _ -> invalid_arg "accel.send: payload is not a memref")
    | [] -> invalid_arg "accel.send: missing payload")
  | _ -> 1

type chain = { ch_first : int; ch_last : int; ch_words : int }

(* A chain is a maximal run of send-like ops closed by one carrying
   [flush = true]; interleaved pure ops do not break it. *)
let analyze_chains (body : Ir.op array) =
  let chains = ref [] in
  let cur_first = ref (-1) in
  let cur_words = ref 0 in
  Array.iteri
    (fun i o ->
      if is_send_like o then begin
        if !cur_first < 0 then begin
          cur_first := i;
          cur_words := 0
        end;
        cur_words := !cur_words + words_of_send_like o;
        if Accel.is_flush o then begin
          chains := { ch_first = !cur_first; ch_last = i; ch_words = !cur_words } :: !chains;
          cur_first := -1
        end
      end)
    body;
  if !cur_first >= 0 then Error "a send chain is not closed by a flush"
  else Ok (List.rev !chains)

(* Static trip count of an [scf.for]: constant step, and either
   constant bounds or the codegen's [ub = addi lb extent] shape. *)
let static_trip defs (for_op : Ir.op) =
  match for_op.Ir.operands with
  | [ lb; ub; step ] -> (
    match const_int defs step with
    | Some s when s > 0 -> (
      let extent =
        match (const_int defs lb, const_int defs ub) with
        | Some l, Some u -> Some (u - l)
        | _ -> (
          match Hashtbl.find_opt defs ub.Ir.vid with
          | Some (d : Ir.op) when d.Ir.name = "arith.addi" -> (
            match d.Ir.operands with
            | [ x; y ] when x.Ir.vid = lb.Ir.vid -> const_int defs y
            | [ x; y ] when y.Ir.vid = lb.Ir.vid -> const_int defs x
            | _ -> None)
          | _ -> None)
      in
      match extent with
      | Some e when e > 0 && e mod s = 0 -> Some (lb, s, e / s)
      | _ -> None)
    | _ -> None)
  | _ -> None

let max_unrolled_trip = 64

(* Attempt to pipeline one innermost loop; [None] leaves it intact. *)
let try_expand ~defs ~half_words (for_op : Ir.op) : Ir.op list option =
  let block = Ir.single_block for_op in
  let iv = match block.Ir.bargs with [ v ] -> v | _ -> invalid_arg "scf.for: bad block" in
  let body =
    match List.rev block.Ir.body with
    | last :: rev_rest when last.Ir.name = Scf.yield_name -> Array.of_list (List.rev rev_rest)
    | _ -> [||]
  in
  let n = Array.length body in
  match analyze_chains body with
  | Error reason ->
    missed ~name:"open-chain" "%s" reason;
    None
  | Ok [] -> None (* not a transfer loop *)
  | Ok chains -> (
    let unsupported =
      Array.exists
        (fun o -> not (is_send_like o || is_clonable_pure o || o.Ir.name = Accel.recv_name))
        body
    in
    let recvs = ref [] in
    Array.iteri (fun i o -> if o.Ir.name = Accel.recv_name then recvs := i :: !recvs) body;
    let recvs = List.rev !recvs in
    let p_end = (List.nth chains (List.length chains - 1)).ch_last in
    let used_vids = Hashtbl.create 64 in
    Array.iter
      (fun (o : Ir.op) ->
        List.iter (fun (v : Ir.value) -> Hashtbl.replace used_vids v.Ir.vid ()) o.Ir.operands)
      body;
    let recv_ok =
      List.for_all
        (fun i ->
          i > p_end
          && List.for_all
               (fun (r : Ir.value) -> not (Hashtbl.mem used_vids r.Ir.vid))
               body.(i).Ir.results)
        recvs
    in
    let roots_zero =
      List.for_all
        (fun c ->
          match body.(c.ch_first).Ir.operands with
          | [ _; offset ] -> const_int defs offset = Some 0
          | _ -> false)
        chains
    in
    if unsupported then begin
      missed ~name:"unsupported-op" "loop body has ops the pipeliner cannot reorder";
      None
    end
    else if List.length recvs > 1 || not recv_ok then begin
      missed ~name:"recv-shape"
        "need at most one trailing accel.recv with an unused offset result";
      None
    end
    else if not roots_zero then begin
      missed ~name:"chain-base" "a send chain does not start at staging offset 0";
      None
    end
    else
      match static_trip defs for_op with
      | None ->
        missed ~name:"non-static-bounds" "loop bounds are not static constants";
        None
      | Some (_, _, trip) when trip > max_unrolled_trip ->
        missed ~name:"trip-count" "trip count %d exceeds the unroll limit %d" trip
          max_unrolled_trip;
        None
      | Some (lb, step, trip) ->
        let max_chain = List.fold_left (fun acc c -> max acc c.ch_words) 0 chains in
        if max_chain > half_words then begin
          missed ~name:"buffer-capacity"
            "largest chain (%d words) does not fit a %d-word staging half" max_chain
            half_words;
          None
        end
        else begin
          let nchains = List.length chains in
          let total = trip * nchains in
          let is_first = Array.make n false and is_last = Array.make n false in
          List.iter
            (fun c ->
              is_first.(c.ch_first) <- true;
              is_last.(c.ch_last) <- true)
            chains;
          let b = Builder.create () in
          let tokens = Array.make total None in
          let fctr = ref 0 in
          let emit_wait g =
            match tokens.(g) with
            | Some tok -> Accel.wait b ~token:tok
            | None -> assert false
          in
          let lb_const = const_int defs lb in
          let iv_for j =
            match lb_const with
            | Some l -> Arith.constant_index b (l + (j * step))
            | None ->
              if j = 0 then lb else Arith.addi b lb (Arith.constant_index b (j * step))
          in
          let substs = Array.init trip (fun _ -> Hashtbl.create 16) in
          let lookup subst (v : Ir.value) =
            match Hashtbl.find_opt subst v.Ir.vid with Some v' -> v' | None -> v
          in
          let clone subst (o : Ir.op) =
            let operands = List.map (lookup subst) o.Ir.operands in
            let results =
              List.map
                (fun (v : Ir.value) ->
                  let v' = Ir.fresh_value v.Ir.vty in
                  Hashtbl.replace subst v.Ir.vid v';
                  v')
                o.Ir.results
            in
            { o with Ir.operands; results }
          in
          (* P(j): iteration j's staging + token sends, ping/pong based. *)
          let emit_p j =
            let subst = substs.(j) in
            Hashtbl.replace subst iv.Ir.vid (iv_for j);
            for i = 0 to p_end do
              let o = body.(i) in
              if is_send_like o then begin
                if is_first.(i) && !fctr >= 2 then emit_wait (!fctr - 2);
                let o' = clone subst o in
                let o' =
                  if is_first.(i) then begin
                    let base = Arith.constant_i32 b (!fctr mod 2 * half_words) in
                    match o'.Ir.operands with
                    | [ payload; _ ] -> { o' with Ir.operands = [ payload; base ] }
                    | _ -> o'
                  end
                  else o'
                in
                let o' = if is_last.(i) then Ir.remove_attr o' "flush" else o' in
                Builder.emit b o';
                if is_last.(i) then begin
                  tokens.(!fctr) <- Some (Accel.start_send b);
                  incr fctr
                end
              end
              else Builder.emit b (clone subst o)
            done
          in
          (* C(j): iteration j's drain, as a start_recv/wait pair. *)
          let emit_c j =
            let subst = substs.(j) in
            for i = p_end + 1 to n - 1 do
              let o = body.(i) in
              if o.Ir.name = Accel.recv_name then begin
                let dst =
                  match o.Ir.operands with
                  | d :: _ -> lookup subst d
                  | [] -> invalid_arg "accel.recv: missing destination"
                in
                let tok = Accel.start_recv b ~mode:(Accel.recv_mode_of o) ~dst in
                Accel.wait b ~token:tok
              end
              else Builder.emit b (clone subst o)
            done
          in
          emit_p 0;
          for j = 1 to trip - 1 do
            emit_p j;
            emit_c (j - 1)
          done;
          emit_c (trip - 1);
          for g = max 0 (total - 2) to total - 1 do
            emit_wait g
          done;
          Remarks.emit ~kind:Remarks.Applied ~pass:pass_name ~name:"pipeline-loop"
            ~loc:"scf.for"
            ~args:
              [
                ("trip_count", Remarks.Int trip);
                ("chains_per_iteration", Remarks.Int nchains);
                ("tokens", Remarks.Int total);
                ("half_words", Remarks.Int half_words);
              ]
            (Printf.sprintf
               "unrolled %d iterations into %d ping/pong token transfers overlapping \
                compute"
               trip total);
          Some (Builder.finish b)
        end)

let has_db_attr (o : Ir.op) =
  o.Ir.name = Accel.dma_init_name
  && Ir.attr o "double_buffer" = Some (Attribute.Bool true)

let is_innermost_for (o : Ir.op) =
  o.Ir.name = Scf.for_name && Ir.count_ops (fun x -> x.Ir.name = Scf.for_name) o = 1

let rewrite_func (f : Ir.op) =
  match Ir.find_ops has_db_attr f with
  | [] -> f
  | init :: _ ->
    let defs = Hashtbl.create 64 in
    Ir.walk
      (fun (o : Ir.op) ->
        List.iter (fun (r : Ir.value) -> Hashtbl.replace defs r.Ir.vid o) o.Ir.results)
      f;
    (* The staging halves split the input window of the dma_init that
       requested double buffering (sizes are bytes in the IR). *)
    let half_words =
      match init.Ir.operands with
      | [ _; _; in_size; _; _ ] -> (
        match const_int defs in_size with Some bytes -> bytes / 4 / 2 | None -> 0)
      | _ -> 0
    in
    if half_words <= 0 then begin
      missed ~name:"dma-window" "dma_init input window size is not a static constant";
      f
    end
    else begin
      let rec rw (o : Ir.op) : Ir.op list =
        if is_innermost_for o then
          match try_expand ~defs ~half_words o with Some ops -> ops | None -> [ o ]
        else
          let regions =
            List.map
              (List.map (fun (blk : Ir.block) ->
                   { blk with Ir.body = List.concat_map rw blk.Ir.body }))
              o.Ir.regions
          in
          [ { o with Ir.regions } ]
      in
      match rw f with
      | [ f' ] -> f'
      | _ -> f
    end

let pass =
  Pass.make pass_name (fun m ->
      Ir.with_module_body m
        (List.map
           (fun (o : Ir.op) -> if Func.is_func o then rewrite_func o else o)
           (Ir.module_body m)))
