let spec_callee = function
  | name when name = Runtime_abi.copy_to_dma_region -> Some Runtime_abi.copy_to_dma_region_spec
  | name when name = Runtime_abi.copy_from_dma_region -> Some Runtime_abi.copy_from_dma_region_spec
  | name when name = Runtime_abi.copy_from_dma_region_accumulate ->
    Some Runtime_abi.copy_from_dma_region_accumulate_spec
  | name when name = Runtime_abi.dma_start_recv_async ->
    Some Runtime_abi.dma_start_recv_async_spec
  | _ -> None

let unit_innermost_stride (v : Ir.value) =
  match v.vty with
  | Ty.Memref m -> (
    match List.rev m.strides with last :: _ -> last = 1 | [] -> true)
  | Ty.Scalar _ | Ty.Func _ | Ty.Token -> false

let rewrite (o : Ir.op) =
  if o.name <> "func.call" then o
  else
    match (Ir.attr o "callee", o.operands) with
    | Some (Attribute.Str callee), (memref :: _ as operands) -> (
      match spec_callee callee with
      | Some specialised when unit_innermost_stride memref ->
        ignore operands;
        Remarks.emit ~kind:Remarks.Applied ~pass:"copy-specialization"
          ~name:"specialize-copy" ~loc:o.name
          ~args:[ ("callee", Remarks.Str specialised) ]
          (Printf.sprintf "rewrote %s to the memcpy-based fast path" callee);
        Ir.set_attr o "callee" (Attribute.Str specialised)
      | Some _ ->
        Remarks.emit ~kind:Remarks.Missed ~pass:"copy-specialization"
          ~name:"strided-copy" ~loc:o.name
          ~args:[ ("callee", Remarks.Str callee) ]
          "innermost stride is not 1: keeping the generic element-wise copy";
        o
      | None -> o)
    | _ -> o

let pass = Pass.make "copy-specialization" (fun m -> Ir.map_nested rewrite m)
