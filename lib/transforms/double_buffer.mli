(** Double-buffered host codegen (Sec. V, asynchronous form).

    Software-pipelines the innermost transfer loop of every function
    whose [accel.dma_init] carries [double_buffer = true]: the loop is
    fully unrolled, each flush-closed send chain is re-based onto
    alternating halves of the DMA staging window and issued as an
    [accel.start_send] token, and the token's [accel.wait] is deferred
    until that half is about to be refilled — so the transfer (and the
    compute it triggers) overlaps the host staging the next tile. A
    trailing [accel.recv] becomes a [start_recv]/[wait] pair interleaved
    after the following iteration's sends.

    Legality is checked per loop (static trip count, chains fitting one
    staging half, no unsupported ops); failures emit [Missed] remarks
    and leave the loop intact. Without the attribute the pass is the
    identity, keeping the blocking path bit-identical. *)

val pass : Pass.t
