let ( let* ) r f = Result.bind r f

(* Effective per-dimension extent inside one accelerator tile. *)
let effective_extent ~ranges ~accel_dim d =
  let tile = List.nth accel_dim d in
  if tile > 0 then tile else List.nth ranges d

(* Extent of one operand-index expression inside a tile: a window of
   [1 + sum (eff_d - 1)] elements (exact for the Dim and Add(Dim, Dim)
   forms the supported ops use). *)
let rec expr_tile_extent ~ranges ~accel_dim = function
  | Affine_map.Dim d -> effective_extent ~ranges ~accel_dim d
  | Affine_map.Cst _ -> 1
  | Affine_map.Add (x, y) ->
    expr_tile_extent ~ranges ~accel_dim x + expr_tile_extent ~ranges ~accel_dim y - 1
  | Affine_map.Mul (Affine_map.Cst s, e) | Affine_map.Mul (e, Affine_map.Cst s) ->
    (* a stride-s window over [ext] points spans s*(ext-1)+1 elements *)
    (s * (expr_tile_extent ~ranges ~accel_dim e - 1)) + 1
  | Affine_map.Mul _ ->
    invalid_arg "Tiling: only constant-stride multiplicative indexing is supported"

let tile_extent_of_expr ~ranges ~accel_dim expr = expr_tile_extent ~ranges ~accel_dim expr

let operand_tile_elems ~maps ~ranges ~accel_dim =
  List.map
    (fun (m : Affine_map.t) ->
      List.fold_left
        (fun acc expr -> acc * expr_tile_extent ~ranges ~accel_dim expr)
        1 m.exprs)
    maps

let check_buffers (config : Accel_config.t) ~maps ~ranges ~accel_dim =
  let per_operand = operand_tile_elems ~maps ~ranges ~accel_dim in
  if List.exists (fun n -> n > config.buffer_capacity_elems) per_operand then
    Error
      (Printf.sprintf "an operand tile (%s elements) exceeds the buffer capacity %d"
         (Util.string_of_list string_of_int per_operand)
         config.buffer_capacity_elems)
  else Ok ()

(* Test-only fault injection. [Off_by_one_first_tile] widens the first
   multi-tile host dimension by one element *after* all validation, the
   way a real tiling bug would slip past the checks. The differential
   fuzzer's acceptance test flips this on to prove the oracle catches
   and shrinks such a bug, then reverts it. Never set outside tests. *)
type fault = No_fault | Off_by_one_first_tile

let fault = ref No_fault

let apply_fault ~ranges tiles =
  match !fault with
  | No_fault -> tiles
  | Off_by_one_first_tile ->
    let applied = ref false in
    List.map2
      (fun t extent ->
        if (not !applied) && t > 0 && extent > t then begin
          applied := true;
          t + 1
        end
        else t)
      tiles ranges

let resolve_accel_dims (config : Accel_config.t) ~maps ~ranges ?tile_override () =
  let n = List.length config.accel_dims in
  let* () =
    if List.length ranges = n then Ok ()
    else Error (Printf.sprintf "expected %d iteration dims, found %d" n (List.length ranges))
  in
  let* tiles =
    match tile_override with
    | None ->
      Ok
        (List.map2
           (fun base extent ->
             if base = 0 then 0 else if base > extent then -1 else base)
           config.accel_dims ranges)
    | Some override_tiles ->
      if not config.flexible then
        Error "tile_override is only valid for flexible accelerators"
      else if List.length override_tiles <> n then
        Error "tile_override arity mismatch"
      else
        Ok
          (List.map2
             (fun (base, t) extent ->
               if base = 0 then 0 else if t > extent then -1 else t)
             (List.combine config.accel_dims override_tiles)
             ranges)
  in
  let* () =
    if List.mem (-1) tiles then
      Error "problem extent is smaller than the accelerator tile"
    else Ok ()
  in
  let* () =
    match
      List.find_opt
        (fun ((base, t), extent) ->
          base > 0 && (t mod base <> 0 || extent mod t <> 0))
        (List.combine (List.combine config.accel_dims tiles) ranges)
    with
    | None -> Ok ()
    | Some ((base, t), extent) ->
      Error
        (Printf.sprintf
           "tile sizes must be multiples of the accelerator granularity and divide the \
            problem extents: tile %d %s (tiles: %s, extents: %s)"
           t
           (if t mod base <> 0 then
              Printf.sprintf "is not a multiple of granularity %d" base
            else Printf.sprintf "does not divide extent %d" extent)
           (Util.string_of_list string_of_int tiles)
           (Util.string_of_list string_of_int ranges))
  in
  let* () = check_buffers config ~maps ~ranges ~accel_dim:tiles in
  Ok (apply_fault ~ranges tiles)

let derive_permutation ~flow ~opcode_map ~maps ~accel_dim =
  let n = List.length accel_dim in
  let host d = List.nth accel_dim d > 0 in
  let depth_max = Opcode.flow_depth flow + 1 in
  let levels = Array.make n depth_max in
  let dims_of_arg arg =
    match List.nth_opt maps arg with
    | None -> []
    | Some m ->
      let rec dims = function
        | Affine_map.Dim d -> [ d ]
        | Affine_map.Cst _ -> []
        | Affine_map.Add (x, y) | Affine_map.Mul (x, y) -> dims x @ dims y
      in
      List.concat_map dims m.Affine_map.exprs
  in
  List.iter
    (fun (key, depth) ->
      match Opcode.find opcode_map key with
      | None -> ()
      | Some entry ->
        let args =
          Opcode.sends_of_actions entry.actions @ Opcode.recvs_of_actions entry.actions
        in
        List.iter
          (fun arg ->
            List.iter
              (fun d -> if host d && depth < levels.(d) then levels.(d) <- depth)
              (dims_of_arg arg))
          args)
    (Opcode.flow_placements flow);
  let host_dims = List.filter host (Util.range n) in
  let absorbed = List.filter (fun d -> not (host d)) (Util.range n) in
  let sorted = List.stable_sort (fun a b -> compare levels.(a) levels.(b)) host_dims in
  sorted @ absorbed

let safe_cpu_tiling_dims ~flow ~opcode_map ~maps ~accel_dim =
  let n = List.length accel_dim in
  let host d = List.nth accel_dim d > 0 in
  let host_dims = List.filter host (Util.range n) in
  let flow_d = Opcode.flow_depth flow in
  let dims_of_arg arg =
    match List.nth_opt maps arg with
    | None -> []
    | Some m ->
      let rec dims = function
        | Affine_map.Dim d -> [ d ]
        | Affine_map.Cst _ -> []
        | Affine_map.Add (x, y) | Affine_map.Mul (x, y) -> dims x @ dims y
      in
      List.concat_map dims m.Affine_map.exprs
  in
  let hoisted_deps =
    List.filter_map
      (fun (key, depth) ->
        if depth >= flow_d then None
        else
          match Opcode.find opcode_map key with
          | None -> None
          | Some entry ->
            let args =
              Opcode.sends_of_actions entry.actions @ Opcode.recvs_of_actions entry.actions
            in
            if args = [] then None
            else Some (List.sort_uniq compare (List.concat_map dims_of_arg args)))
      (Opcode.flow_placements flow)
  in
  List.filter
    (fun d -> List.for_all (fun deps -> List.mem d deps) hoisted_deps)
    host_dims

let choose_cpu_tiles (host : Host_config.t) ~ranges ~accel_dim ~safe_dims ~footprint_bytes =
  let llc = Host_config.last_level_cache_bytes host in
  if llc = 0 || footprint_bytes <= llc then List.map (fun _ -> 0) ranges
  else begin
    (* Three f32 operand blocks of TxT must fit half of the LLC, so
       the repeatedly-copied working set stops thrashing to DRAM. *)
    let target = int_of_float (sqrt (float_of_int llc /. (2.0 *. 3.0 *. 4.0))) in
    (* Once the working set far exceeds the LLC, every streamed operand
       re-reads from DRAM and the extra transfers caused by tiling a
       dimension a hoisted opcode does not depend on are second-order:
       a stationary tile re-sent LLC-resident costs far less than the
       per-line DRAM penalty it removes from the streams. *)
    let tile_unsafe_too = footprint_bytes > 2 * llc in
    List.mapi
      (fun d (tile, extent) ->
        if tile <= 0 || not (tile_unsafe_too || List.mem d safe_dims) then 0
        else begin
          (* Largest multiple of the accelerator tile, at most the
             target, that divides the extent (so the two-level loop
             nest stays exact). *)
          let rec find t =
            if t <= tile then 0 else if extent mod t = 0 then t else find (t - tile)
          in
          let t = find (target / tile * tile) in
          if t <= tile || t >= extent then 0 else t
        end)
      (List.combine accel_dim ranges)
  end
