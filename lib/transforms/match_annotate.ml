type options = {
  flow : string option;
  tile_override : int list option;
  cpu_tiling : bool;
  double_buffer : bool;
  on_skip : (string -> unit) option;
}

let default_options =
  {
    flow = None;
    tile_override = None;
    cpu_tiling = true;
    double_buffer = false;
    on_skip = None;
  }

let ( let* ) r f = Result.bind r f

let pass_name = "match-and-annotate"

(* One Applied remark per opcode the flow places above the innermost
   loop: that operand tile stays stationary in the accelerator across
   the loops below it, which is the data-movement saving the paper's
   Ns/Bs flows exist for. Guarded on [Remarks.enabled] because the
   per-operand footprint computation is not free. *)
let emit_success_remarks ~(accel : Accel_config.t) ~maps ~ranges ~accel_dim ~flow
    ~flow_name ~cpu_tile op =
  if Remarks.enabled () then begin
    Remarks.emit ~kind:Remarks.Applied ~pass:pass_name ~name:"offload"
      ~loc:op.Ir.name
      ~args:
        [
          ("accel", Remarks.Str accel.Accel_config.accel_name);
          ("flow", Remarks.Str flow_name);
          ("accel_dims", Remarks.Str (Util.string_of_list string_of_int accel_dim));
        ]
      (Printf.sprintf "offloading to %s with opcode flow %s"
         accel.Accel_config.accel_name flow_name);
    let per_operand = Tiling.operand_tile_elems ~maps ~ranges ~accel_dim in
    let flow_d = Opcode.flow_depth flow in
    List.iter
      (fun (key, depth) ->
        if depth < flow_d then
          match Opcode.find accel.opcode_map key with
          | None -> ()
          | Some entry ->
            let args =
              Opcode.sends_of_actions entry.Opcode.actions
              @ Opcode.recvs_of_actions entry.Opcode.actions
            in
            if args <> [] then begin
              let words =
                List.fold_left
                  (fun acc a ->
                    acc + Option.value ~default:0 (List.nth_opt per_operand a))
                  0 args
              in
              Remarks.emit ~kind:Remarks.Applied ~pass:pass_name
                ~name:"hoist-transfer" ~loc:op.Ir.name
                ~args:
                  [
                    ("opcode", Remarks.Str key);
                    ("depth", Remarks.Int depth);
                    ("flow_depth", Remarks.Int flow_d);
                    ("words_per_call", Remarks.Int words);
                  ]
                (Printf.sprintf
                   "hoisted opcode %s to loop depth %d of %d: its %d-word tile \
                    stays stationary across the inner loop(s)"
                   key depth flow_d words)
            end)
      (Opcode.flow_placements flow);
    if List.exists (fun t -> t > 0) cpu_tile then
      Remarks.emit ~kind:Remarks.Applied ~pass:pass_name ~name:"cpu-tiling"
        ~loc:op.Ir.name
        ~args:[ ("tiles", Remarks.Str (Util.string_of_list string_of_int cpu_tile)) ]
        "added a cache-blocking CPU tiling level above the accelerator tiles"
  end

let annotate_op ~(accel : Accel_config.t) ~host ~options op =
  let maps = Linalg.indexing_maps op in
  let ranges = Linalg.loop_ranges op in
  let* accel_dim =
    Tiling.resolve_accel_dims accel ~maps ~ranges ?tile_override:options.tile_override ()
  in
  let flow_name =
    match options.flow with Some f -> f | None -> accel.selected_flow
  in
  let* flow =
    match List.assoc_opt flow_name accel.opcode_flows with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "flow %s is not defined for %s" flow_name accel.accel_name)
  in
  let permutation =
    Tiling.derive_permutation ~flow ~opcode_map:accel.opcode_map ~maps ~accel_dim
  in
  let cpu_tile =
    if options.cpu_tiling then begin
      let safe_dims =
        Tiling.safe_cpu_tiling_dims ~flow ~opcode_map:accel.opcode_map ~maps ~accel_dim
      in
      let footprint_bytes =
        List.fold_left
          (fun acc (v : Ir.value) ->
            let mr = Ty.memref_of v.vty in
            acc + (Ty.num_elements mr * Ty.dtype_size_bytes mr.Ty.elem))
          0 op.Ir.operands
      in
      Tiling.choose_cpu_tiles host ~ranges ~accel_dim ~safe_dims ~footprint_bytes
    end
    else List.map (fun _ -> 0) ranges
  in
  let trait =
    {
      Trait.dma_init_config = accel.dma;
      init_opcodes = accel.init_opcodes;
      accel_dim;
      permutation;
      opcode_map = accel.opcode_map;
      opcode_flow = flow;
      cpu_tile;
      double_buffer = options.double_buffer;
    }
  in
  let host_loops =
    List.length (List.filter (fun d -> d > 0) accel_dim)
    + List.length (List.filter (fun t -> t > 0) cpu_tile)
  in
  let* () =
    if Opcode.flow_depth flow > max host_loops 1 then
      Error
        (Printf.sprintf "flow %s is deeper (%d) than the loop nest (%d)" flow_name
           (Opcode.flow_depth flow) host_loops)
    else Ok ()
  in
  let* () =
    Trait.validate trait ~n_dims:(List.length ranges) ~n_args:(List.length op.Ir.operands)
  in
  emit_success_remarks ~accel ~maps ~ranges ~accel_dim ~flow ~flow_name ~cpu_tile op;
  Ok (Trait.attach op trait)

let pass ~accel ~host ?(options = default_options) () =
  let rewrite op =
    if
      Matcher.matches_kind accel.Accel_config.op_kind op
      && not (Ir.has_attr op "opcode_flow")
    then begin
      match annotate_op ~accel ~host ~options op with
      | Ok annotated -> annotated
      | Error reason ->
        (* Remark first: [on_skip] may raise, and the Missed remark is
           how the user learns why the op stayed on the CPU path. *)
        Remarks.emit ~kind:Remarks.Missed ~pass:pass_name ~name:"not-offloaded"
          ~loc:op.Ir.name
          ~args:[ ("accel", Remarks.Str accel.Accel_config.accel_name) ]
          (Printf.sprintf "op left on the CPU path: %s" reason);
        (match options.on_skip with
        | Some f -> f (Printf.sprintf "%s: %s" accel.Accel_config.accel_name reason)
        | None -> ());
        op
    end
    else op
  in
  Pass.make "match-and-annotate" (fun m -> Ir.map_nested rewrite m)
