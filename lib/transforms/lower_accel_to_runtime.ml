(* Emit a call whose result values REUSE the accel op's result values,
   so later uses of the offset chain stay valid without substitution. *)
let call_with_results b ~callee ~results operands =
  Builder.emit b
    (Ir.op "func.call" ~operands ~results ~attrs:[ ("callee", Attribute.Str callee) ])

let call b ~callee operands =
  ignore (Func.call b ~callee operands)

let expand b (o : Ir.op) =
  let flush_after () =
    if Accel.is_flush o then call b ~callee:Runtime_abi.dma_flush_send []
  in
  match o.name with
  | "accel.dma_init" ->
    let call_op =
      Ir.op "func.call" ~operands:o.operands
        ~attrs:
          (("callee", Attribute.Str Runtime_abi.dma_init)
          ::
          (match Ir.attr o "double_buffer" with
          | Some (Attribute.Bool true) -> [ ("double_buffer", Attribute.Bool true) ]
          | Some _ | None -> []))
    in
    Builder.emit b call_op
  | "accel.dma_free" -> call b ~callee:Runtime_abi.dma_free []
  | "accel.sendLiteral" ->
    call_with_results b ~callee:Runtime_abi.stage_literal ~results:o.results o.operands;
    flush_after ()
  | "accel.sendDim" ->
    let extent = Accel.send_dim_extent o in
    let word = Arith.constant_i32 b extent in
    let offset =
      match o.operands with
      | [ _src; offset ] -> offset
      | _ -> failwith "lower-accel: malformed accel.sendDim"
    in
    call_with_results b ~callee:Runtime_abi.stage_literal ~results:o.results
      [ word; offset ];
    flush_after ()
  | "accel.sendIdx" ->
    let idx, offset =
      match o.operands with
      | [ idx; offset ] -> (idx, offset)
      | _ -> failwith "lower-accel: malformed accel.sendIdx"
    in
    let word = if Ty.equal idx.Ir.vty Ty.index then Arith.index_cast b idx else idx in
    call_with_results b ~callee:Runtime_abi.stage_literal ~results:o.results
      [ word; offset ];
    flush_after ()
  | "accel.send" ->
    call_with_results b ~callee:Runtime_abi.copy_to_dma_region ~results:o.results
      o.operands;
    flush_after ()
  | "accel.recv" ->
    let tile, offset =
      match o.operands with
      | [ tile; offset ] -> (tile, offset)
      | _ -> failwith "lower-accel: malformed accel.recv"
    in
    call b ~callee:Runtime_abi.dma_flush_send [];
    let n = Ty.num_elements (Ty.memref_of tile.Ir.vty) in
    let len = Arith.constant_i32 b n in
    call b ~callee:Runtime_abi.dma_start_recv [ len ];
    call b ~callee:Runtime_abi.dma_wait_recv [];
    let callee =
      match Accel.recv_mode_of o with
      | Accel.Accumulate -> Runtime_abi.copy_from_dma_region_accumulate
      | Accel.Store -> Runtime_abi.copy_from_dma_region
    in
    call_with_results b ~callee ~results:o.results [ tile; offset ]
  | "accel.start_send" ->
    call_with_results b ~callee:Runtime_abi.dma_start_send_async ~results:o.results []
  | "accel.start_recv" ->
    (* Forward the mode attr on the call: the wait side needs it to
       pick store vs accumulate when landing the data. *)
    Builder.emit b
      (Ir.op "func.call" ~operands:o.operands ~results:o.results
         ~attrs:
           (("callee", Attribute.Str Runtime_abi.dma_start_recv_async)
           ::
           (match Ir.attr o "mode" with Some m -> [ ("mode", m) ] | None -> [])))
  | "accel.wait" -> call b ~callee:Runtime_abi.dma_wait o.operands
  | other -> failwith (Printf.sprintf "lower-accel: unexpected accel op %s" other)

let rec rewrite_op b (o : Ir.op) =
  if Accel.is_accel o then expand b o
  else begin
    let regions =
      List.map (fun blocks -> List.map rewrite_block blocks) o.regions
    in
    Builder.emit b { o with regions }
  end

and rewrite_block (blk : Ir.block) =
  let b = Builder.create () in
  List.iter (rewrite_op b) blk.body;
  { blk with body = Builder.finish b }

let pass =
  Pass.make "lower-accel-to-runtime" (fun m ->
      Ir.with_module_body m
        (List.map
           (fun (f : Ir.op) ->
             if Func.is_func f then
               { f with regions = [ [ rewrite_block (Func.body_of f) ] ] }
             else f)
           (Ir.module_body m)))
