(** Assembled pass pipelines mirroring the AXI4MLIR compiler flow
    (Fig. 4). *)

type t = {
  accel : Accel_config.t;
  host : Host_config.t;
  options : Match_annotate.options;
  copy_specialization : bool;
      (** apply the Sec. IV-B strided-copy optimisation (Fig. 12b);
          disabling it reproduces the bottlenecked Fig. 12a codegen *)
  coalesce_transfers : bool;
      (** apply the Sec. V transfer-coalescing extension: merge
          back-to-back send chains into single DMA transactions *)
  to_runtime_calls : bool;
      (** lower the [accel] dialect all the way to runtime library
          calls; when false, compilation stops at the accel dialect
          (useful for inspecting Fig. 6b-style IR) *)
}

val make :
  accel:Accel_config.t ->
  host:Host_config.t ->
  ?options:Match_annotate.options ->
  ?copy_specialization:bool ->
  ?coalesce_transfers:bool ->
  ?to_runtime_calls:bool ->
  unit ->
  t

val passes : t -> Pass.t list

val run :
  ?pass_options:Pass.options ->
  ?stats:Pass.pass_stat list ref ->
  ?tracer:Trace.t ->
  t ->
  Ir.op ->
  Ir.op
(** Run on a module. Registers all dialect verifiers first. [stats] and
    [tracer] are forwarded to {!Pass.run_pipeline} for per-pass timing
    and compile-track trace events. *)

exception Rejected of string
(** Raised by {!reject} to signal a structured "cannot offload". *)

val reject : string -> unit
(** For use as [Match_annotate.options.on_skip]: raising {!Rejected}
    lets {!run_result} report the reason as a classifiable [Error]
    instead of an anonymous failure — the differential fuzzer depends
    on this to tell clean rejections apart from mis-executions. *)

val run_result :
  ?pass_options:Pass.options ->
  ?stats:Pass.pass_stat list ref ->
  ?tracer:Trace.t ->
  t ->
  Ir.op ->
  (Ir.op, string) result
(** As {!run}, but catches {!Rejected} (other exceptions propagate). *)

val cpu_passes : Pass.t list
(** The CPU-only reference pipeline: [linalg.generic] -> loops. *)

val run_cpu :
  ?pass_options:Pass.options ->
  ?stats:Pass.pass_stat list ref ->
  ?tracer:Trace.t ->
  Ir.op ->
  Ir.op
