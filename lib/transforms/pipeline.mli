(** Assembled pass pipelines mirroring the AXI4MLIR compiler flow
    (Fig. 4). *)

type t = {
  accel : Accel_config.t;
  host : Host_config.t;
  options : Match_annotate.options;
  copy_specialization : bool;
      (** apply the Sec. IV-B strided-copy optimisation (Fig. 12b);
          disabling it reproduces the bottlenecked Fig. 12a codegen *)
  coalesce_transfers : bool;
      (** apply the Sec. V transfer-coalescing extension: merge
          back-to-back send chains into single DMA transactions *)
  to_runtime_calls : bool;
      (** lower the [accel] dialect all the way to runtime library
          calls; when false, compilation stops at the accel dialect
          (useful for inspecting Fig. 6b-style IR) *)
}

val make :
  accel:Accel_config.t ->
  host:Host_config.t ->
  ?options:Match_annotate.options ->
  ?copy_specialization:bool ->
  ?coalesce_transfers:bool ->
  ?to_runtime_calls:bool ->
  unit ->
  t

val passes : t -> Pass.t list

val run :
  ?pass_options:Pass.options ->
  ?stats:Pass.pass_stat list ref ->
  ?tracer:Trace.t ->
  t ->
  Ir.op ->
  Ir.op
(** Run on a module. Registers all dialect verifiers first. [stats] and
    [tracer] are forwarded to {!Pass.run_pipeline} for per-pass timing
    and compile-track trace events. *)

val cpu_passes : Pass.t list
(** The CPU-only reference pipeline: [linalg.generic] -> loops. *)

val run_cpu :
  ?pass_options:Pass.options ->
  ?stats:Pass.pass_stat list ref ->
  ?tracer:Trace.t ->
  Ir.op ->
  Ir.op
