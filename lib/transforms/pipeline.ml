type t = {
  accel : Accel_config.t;
  host : Host_config.t;
  options : Match_annotate.options;
  copy_specialization : bool;
  coalesce_transfers : bool;
  to_runtime_calls : bool;
}

let make ~accel ~host ?(options = Match_annotate.default_options)
    ?(copy_specialization = true) ?(coalesce_transfers = false)
    ?(to_runtime_calls = true) () =
  { accel; host; options; copy_specialization; coalesce_transfers; to_runtime_calls }

let passes t =
  [ Match_annotate.pass ~accel:t.accel ~host:t.host ~options:t.options (); Accel_codegen.pass ]
  @ (if t.coalesce_transfers then [ Coalesce_transfers.pass ] else [])
  (* Self-gating on the dma_init double_buffer attribute: identity
     otherwise. Runs after coalescing so merged chains pipeline whole. *)
  @ [ Double_buffer.pass ]
  @ (if t.to_runtime_calls then [ Lower_accel_to_runtime.pass ] else [])
  @ (if t.copy_specialization && t.to_runtime_calls then [ Copy_specialization.pass ] else [])
  @ [ Canonicalize.pass ]

let run ?pass_options ?stats ?tracer t m =
  Dialects.register_all ();
  Remarks.emit ~kind:Remarks.Analysis ~pass:"pipeline" ~name:"config" ~loc:"module"
    ~args:
      [
        ("accel", Remarks.Str t.accel.Accel_config.accel_name);
        ( "flow",
          Remarks.Str
            (match t.options.Match_annotate.flow with
            | Some f -> f
            | None -> t.accel.Accel_config.selected_flow) );
        ("copy_specialization", Remarks.Bool t.copy_specialization);
        ("coalesce_transfers", Remarks.Bool t.coalesce_transfers);
        ("double_buffer", Remarks.Bool t.options.Match_annotate.double_buffer);
      ]
    (Printf.sprintf "lowering for accelerator %s" t.accel.Accel_config.accel_name);
  Pass.run_pipeline ?options:pass_options ?stats ?tracer (passes t) m

(* Structured rejection: an [on_skip] callback that raises [Rejected]
   turns "this op cannot be offloaded" into a classifiable outcome
   instead of an anonymous [Failure]. The differential fuzzer relies on
   this to tell a clean rejection apart from a mis-execution. *)
exception Rejected of string

let reject reason = raise (Rejected reason)

let run_result ?pass_options ?stats ?tracer t m =
  match run ?pass_options ?stats ?tracer t m with
  | compiled -> Ok compiled
  | exception Rejected reason -> Error reason

let cpu_passes = [ Lower_linalg_to_loops.pass ]

let run_cpu ?pass_options ?stats ?tracer m =
  Dialects.register_all ();
  Pass.run_pipeline ?options:pass_options ?stats ?tracer cpu_passes m
