(** Tiling and loop-order decisions (step 4 of the compiler flow):
    mapping the iteration space onto the accelerator's tile sizes,
    choosing cache-level host tiles from the CPU description, and
    deriving the loop permutation implied by an opcode flow's
    stationarity structure. *)

type fault = No_fault | Off_by_one_first_tile

val fault : fault ref
(** Test-only fault injection, applied by {!resolve_accel_dims} after
    all validation. [Off_by_one_first_tile] widens the first multi-tile
    host dimension's tile by one element, the way a real tiling bug
    would slip past the checks — the differential fuzzer's acceptance
    test flips this on to prove its oracle catches and shrinks such a
    bug, then restores [No_fault]. Never set outside tests. *)

val resolve_accel_dims :
  Accel_config.t ->
  maps:Affine_map.t list ->
  ranges:int list ->
  ?tile_override:int list ->
  unit ->
  (int list, string) result
(** Per iteration dimension: the host tile extent (the accelerator
    tile), or 0 when the accelerator absorbs the dimension. Checks
    divisibility of the problem extents, v4-style granularity for
    flexible engines, and that every operand tile fits the
    accelerator's per-operand buffer capacity. *)

val tile_extent_of_expr :
  ranges:int list -> accel_dim:int list -> Affine_map.expr -> int
(** Window extent of one operand-index expression inside a tile
    (tile size for host dims, full extent for absorbed dims;
    [Add] windows compose as [a + b - 1]). *)

val operand_tile_elems : maps:Affine_map.t list -> ranges:int list -> accel_dim:int list -> int list
(** Elements per operand tile implied by the resolved tile sizes (used
    by the buffer check and by transfer-volume heuristics). *)

val derive_permutation :
  flow:Opcode.flow ->
  opcode_map:Opcode.map ->
  maps:Affine_map.t list ->
  accel_dim:int list ->
  int list
(** Loop order (outer to inner, absorbed dims appended last): each host
    dimension is ordered by the shallowest flow scope whose opcodes
    touch an operand indexed by it — so dimensions pinned by a
    stationary transfer come outermost, enabling the hoisting the flow
    requests. Ties keep canonical order. *)

val safe_cpu_tiling_dims :
  flow:Opcode.flow ->
  opcode_map:Opcode.map ->
  maps:Affine_map.t list ->
  accel_dim:int list ->
  int list
(** Host dimensions whose cache-level tiling cannot inflate transfer
    volume: a cache loop sits above every flow scope, so it multiplies
    the execution count of each {e hoisted} opcode (scope depth <
    flow depth) unless the opcode's operands already depend on that
    dimension. Returns the intersection of the hoisted opcodes'
    dimension sets (all host dims when nothing is hoisted, e.g. Ns). *)

val choose_cpu_tiles :
  Host_config.t ->
  ranges:int list ->
  accel_dim:int list ->
  safe_dims:int list ->
  footprint_bytes:int ->
  int list
(** Cache-hierarchy tile per dimension (0 = untiled). Tiling engages
    only when the operands' total footprint exceeds the last-level
    cache; each safe dimension then gets the largest multiple of the
    accelerator tile that divides the extent and keeps three TxT f32
    blocks within half of the LLC — so the repeatedly-copied working
    set stops thrashing to DRAM (the locality the paper's step 4
    exploits). Past twice the LLC even transfer-inflating (unsafe)
    dimensions are tiled: the extra stationary-tile transfers are
    second-order next to the DRAM traffic they remove from the
    streamed operands. *)
