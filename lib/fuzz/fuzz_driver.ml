(* Campaign driver: generates the deterministic case sequence for a
   root seed, runs each case through the differential oracle, tallies
   outcomes, and (optionally) shrinks failures and appends them to a
   corpus file. Also replays previously recorded corpora. *)

type failure_record = {
  index : int;  (* position in the campaign sequence; -1 for replays *)
  case : Fuzz_case.t;
  outcome : Fuzz_oracle.outcome;
  shrunk : Fuzz_shrink.result option;
}

type report = {
  seed : int;
  total : int;
  passed : int;
  rejected : int;
  failed : int;
  failures : failure_record list;
}

(* The oracle guards each execution path, but a generator or harness
   bug must register as a failure rather than abort the campaign. *)
let run_case case =
  match Fuzz_oracle.run case with
  | outcome -> outcome
  | exception exn ->
    Fuzz_oracle.Failed
      [ Fuzz_oracle.Crash { path = "harness"; message = Printexc.to_string exn } ]

let still_fails case =
  match run_case case with Fuzz_oracle.Failed _ -> true | _ -> false

let shrink case = Fuzz_shrink.minimise ~still_fails case

let run_cases ?(seed = 0) ?(shrink_failures = false) ?on_case cases =
  let passed = ref 0 and rejected = ref 0 and failed = ref 0 in
  let failures = ref [] in
  List.iteri
    (fun i (index, case) ->
      ignore i;
      let outcome = run_case case in
      (match on_case with Some f -> f ~index ~case ~outcome | None -> ());
      match outcome with
      | Fuzz_oracle.Pass -> incr passed
      | Fuzz_oracle.Rejected _ -> incr rejected
      | Fuzz_oracle.Failed _ ->
        incr failed;
        let shrunk = if shrink_failures then Some (shrink case) else None in
        failures := { index; case; outcome; shrunk } :: !failures)
    cases;
  {
    seed;
    total = List.length cases;
    passed = !passed;
    rejected = !rejected;
    failed = !failed;
    failures = List.rev !failures;
  }

let campaign ?only ?shrink_failures ?on_case ~seed ~count () =
  let cases =
    List.init count (fun index -> (index, Fuzz_gen.case_at ?only ~seed ~index ()))
  in
  run_cases ~seed ?shrink_failures ?on_case cases

let replay ?shrink_failures ?on_case cases =
  run_cases ?shrink_failures ?on_case (List.mapi (fun _ c -> (-1, c)) cases)

let record_failures ~corpus report =
  List.iter
    (fun f ->
      let case =
        match f.shrunk with Some s -> s.Fuzz_shrink.minimised | None -> f.case
      in
      Fuzz_corpus.append corpus case)
    report.failures

let report_lines report =
  Printf.sprintf "%d cases: %d passed, %d rejected, %d failed" report.total
    report.passed report.rejected report.failed
  :: List.concat_map
       (fun f ->
         let head =
           Printf.sprintf "  [%s] %s\n      %s"
             (if f.index >= 0 then string_of_int f.index else "replay")
             (Fuzz_case.to_string f.case)
             (Fuzz_oracle.outcome_to_string f.outcome)
         in
         match f.shrunk with
         | None -> [ head ]
         | Some s ->
           [
             head;
             Printf.sprintf "      shrunk (%d steps, %d attempts) to: %s"
               s.Fuzz_shrink.steps s.Fuzz_shrink.attempts
               (Fuzz_case.to_string s.Fuzz_shrink.minimised);
           ])
       report.failures
