(* IR round-trip law: parse (print m) must be structurally equal to m,
   and printing must be a fixed point after one round. Checked on every
   module the differential oracle touches, at every lowering level. *)

let check ~stage m =
  let printed = Printer.to_generic m in
  match Parser_ir.parse_op printed with
  | exception Parser_ir.Parse_error msg ->
    Error (Printf.sprintf "%s: printed module does not re-parse: %s" stage msg)
  | reparsed -> (
    let reprinted = Printer.to_generic reparsed in
    if printed <> reprinted then
      Error (Printf.sprintf "%s: print -> parse -> print is not a fixed point" stage)
    else
      match Ir_compare.diff_op m reparsed with
      | None -> Ok ()
      | Some diff ->
        Error (Printf.sprintf "%s: reparsed module differs structurally: %s" stage diff))
