(* One differential-testing scenario: a workload (shape + data seed)
   plus a complete accelerator-configuration choice. Cases serialise to
   a single JSON object so a failing case can be written to a corpus
   file and replayed bit-for-bit. *)

type workload =
  | Matmul of { m : int; n : int; k : int }
  | Conv of { ic : int; ihw : int; oc : int; fhw : int; stride : int }

type t = {
  engine : string;  (* "v1".."v4" for matmul engines, "conv" *)
  size : int;  (* matmul engine edge; ignored for conv *)
  flow : string;
  workload : workload;
  tiles : int list option;  (* tile override (flexible engines only) *)
  cpu_tiling : bool;
  copy_specialization : bool;
  coalesce_transfers : bool;
  double_buffer : bool;
  to_runtime_calls : bool;
  dma_buffer_bytes : int;
  data_seed : int;
  init_c : bool;  (* non-zero initial output, exercising accumulation *)
}

let workload_to_string = function
  | Matmul { m; n; k } -> Printf.sprintf "matmul %dx%dx%d" m n k
  | Conv { ic; ihw; oc; fhw; stride } ->
    Printf.sprintf "conv ic=%d ihw=%d oc=%d fhw=%d stride=%d" ic ihw oc fhw stride

let to_string t =
  let opts =
    String.concat ""
      [
        (if t.cpu_tiling then " +cpu-tiling" else "");
        (if t.copy_specialization then " +copy-spec" else "");
        (if t.coalesce_transfers then " +coalesce" else "");
        (if t.double_buffer then " +double-buffer" else "");
        (if t.to_runtime_calls then "" else " accel-level");
        (if t.init_c then " init-C" else "");
        (match t.tiles with
        | None -> ""
        | Some ts -> " tiles=" ^ String.concat "," (List.map string_of_int ts));
      ]
  in
  Printf.sprintf "%s on %s_%d/%s%s seed=%d" (workload_to_string t.workload) t.engine
    t.size t.flow opts t.data_seed

(* ------------------------------------------------------------------ *)
(* JSON (corpus lines)                                                 *)
(* ------------------------------------------------------------------ *)

let workload_to_json = function
  | Matmul { m; n; k } ->
    Json.Obj
      [
        ("kind", Json.String "matmul");
        ("m", Json.Int m);
        ("n", Json.Int n);
        ("k", Json.Int k);
      ]
  | Conv { ic; ihw; oc; fhw; stride } ->
    Json.Obj
      [
        ("kind", Json.String "conv");
        ("ic", Json.Int ic);
        ("ihw", Json.Int ihw);
        ("oc", Json.Int oc);
        ("fhw", Json.Int fhw);
        ("stride", Json.Int stride);
      ]

let to_json t =
  Json.Obj
    ([
       ("engine", Json.String t.engine);
       ("size", Json.Int t.size);
       ("flow", Json.String t.flow);
       ("workload", workload_to_json t.workload);
     ]
    @ (match t.tiles with
      | None -> []
      | Some ts -> [ ("tiles", Json.List (List.map (fun x -> Json.Int x) ts)) ])
    @ [
        ("cpu_tiling", Json.Bool t.cpu_tiling);
        ("copy_specialization", Json.Bool t.copy_specialization);
        ("coalesce_transfers", Json.Bool t.coalesce_transfers);
        ("double_buffer", Json.Bool t.double_buffer);
        ("to_runtime_calls", Json.Bool t.to_runtime_calls);
        ("dma_buffer_bytes", Json.Int t.dma_buffer_bytes);
        ("data_seed", Json.Int t.data_seed);
        ("init_c", Json.Bool t.init_c);
      ])

let ( let* ) = Result.bind

let field name json f =
  match Json.member_opt name json with
  | None -> Error (Printf.sprintf "case.%s: missing field" name)
  | Some v -> (
    match f v with
    | ok -> Ok ok
    | exception Json.Type_error msg -> Error (Printf.sprintf "case.%s: %s" name msg))

let workload_of_json json =
  let* kind = field "kind" json Json.to_str in
  match kind with
  | "matmul" ->
    let* m = field "m" json Json.to_int in
    let* n = field "n" json Json.to_int in
    let* k = field "k" json Json.to_int in
    Ok (Matmul { m; n; k })
  | "conv" ->
    let* ic = field "ic" json Json.to_int in
    let* ihw = field "ihw" json Json.to_int in
    let* oc = field "oc" json Json.to_int in
    let* fhw = field "fhw" json Json.to_int in
    let* stride = field "stride" json Json.to_int in
    Ok (Conv { ic; ihw; oc; fhw; stride })
  | other -> Error (Printf.sprintf "case.workload.kind: unknown kind %s" other)

let of_json_result json =
  match json with
  | Json.Obj _ ->
    let* engine = field "engine" json Json.to_str in
    let* size = field "size" json Json.to_int in
    let* flow = field "flow" json Json.to_str in
    let* workload_json = field "workload" json (fun j -> j) in
    let* workload = workload_of_json workload_json in
    let* tiles =
      match Json.member_opt "tiles" json with
      | None -> Ok None
      | Some v -> (
        match List.map Json.to_int (Json.to_list v) with
        | ts -> Ok (Some ts)
        | exception Json.Type_error msg -> Error (Printf.sprintf "case.tiles: %s" msg))
    in
    let* cpu_tiling = field "cpu_tiling" json Json.to_bool in
    let* copy_specialization = field "copy_specialization" json Json.to_bool in
    let* coalesce_transfers = field "coalesce_transfers" json Json.to_bool in
    let* double_buffer = field "double_buffer" json Json.to_bool in
    let* to_runtime_calls = field "to_runtime_calls" json Json.to_bool in
    let* dma_buffer_bytes = field "dma_buffer_bytes" json Json.to_int in
    let* data_seed = field "data_seed" json Json.to_int in
    let* init_c = field "init_c" json Json.to_bool in
    Ok
      {
        engine;
        size;
        flow;
        workload;
        tiles;
        cpu_tiling;
        copy_specialization;
        coalesce_transfers;
        double_buffer;
        to_runtime_calls;
        dma_buffer_bytes;
        data_seed;
        init_c;
      }
  | _ -> Error "case: expected a JSON object"

let of_string_result line =
  match Json.of_string line with
  | json -> of_json_result json
  | exception Json.Parse_error msg -> Error ("case: invalid JSON: " ^ msg)

let equal a b = a = b
