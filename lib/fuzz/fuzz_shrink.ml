(* Delta-debugging shrinker.

   Given a failing case and a predicate "does this case still fail?",
   greedily applies the largest simplification that preserves the
   failure, restarting from the simplified case, until no candidate
   helps. Candidates shrink problem extents toward the accelerator
   granule (halving, rounded to a granule multiple, so shrunken cases
   stay inside the legal configuration space), drop the tile override,
   and switch optional pipeline features off — so the minimised repro
   exercises as little machinery as possible. *)

let granule (case : Fuzz_case.t) = if case.engine = "conv" then 1 else case.size

(* Shrink one extent: to the granule itself, then by halving rounded
   down to a granule multiple. *)
let extent_candidates ~granule extent =
  if extent <= granule then []
  else begin
    let halved = extent / 2 / granule * granule in
    let halved = max granule halved in
    if halved = extent then [ granule ] else [ granule; halved ]
  end

let with_workload (case : Fuzz_case.t) workload = { case with Fuzz_case.workload }

let workload_candidates (case : Fuzz_case.t) =
  let g = granule case in
  match case.workload with
  | Fuzz_case.Matmul { m; n; k } ->
    List.concat
      [
        List.map
          (fun m' -> with_workload case (Fuzz_case.Matmul { m = m'; n; k }))
          (extent_candidates ~granule:g m);
        List.map
          (fun n' -> with_workload case (Fuzz_case.Matmul { m; n = n'; k }))
          (extent_candidates ~granule:g n);
        List.map
          (fun k' -> with_workload case (Fuzz_case.Matmul { m; n; k = k' }))
          (extent_candidates ~granule:g k);
      ]
  | Fuzz_case.Conv { ic; ihw; oc; fhw; stride } ->
    List.concat
      [
        List.map
          (fun ic' -> with_workload case (Fuzz_case.Conv { ic = ic'; ihw; oc; fhw; stride }))
          (extent_candidates ~granule:1 ic);
        List.map
          (fun oc' -> with_workload case (Fuzz_case.Conv { ic; ihw; oc = oc'; fhw; stride }))
          (extent_candidates ~granule:1 oc);
        (* spatial extent can only shrink to the filter edge *)
        List.filter_map
          (fun ihw' ->
            if ihw' >= fhw then
              Some (with_workload case (Fuzz_case.Conv { ic; ihw = ihw'; oc; fhw; stride }))
            else None)
          (extent_candidates ~granule:1 ihw);
      ]

let option_candidates (case : Fuzz_case.t) =
  List.filter_map
    (fun c -> c)
    [
      (match case.tiles with None -> None | Some _ -> Some { case with Fuzz_case.tiles = None });
      (if case.coalesce_transfers then Some { case with Fuzz_case.coalesce_transfers = false }
       else None);
      (if case.double_buffer then Some { case with Fuzz_case.double_buffer = false } else None);
      (if case.copy_specialization then
         Some { case with Fuzz_case.copy_specialization = false }
       else None);
      (if case.cpu_tiling then Some { case with Fuzz_case.cpu_tiling = false } else None);
      (if case.init_c then Some { case with Fuzz_case.init_c = false } else None);
      (if case.data_seed <> 1 then Some { case with Fuzz_case.data_seed = 1 } else None);
    ]

let candidates case = workload_candidates case @ option_candidates case

type result = { minimised : Fuzz_case.t; steps : int; attempts : int }

(* [minimise ~still_fails case] assumes [still_fails case] holds. *)
let minimise ?(max_attempts = 500) ~still_fails case =
  let attempts = ref 0 in
  let steps = ref 0 in
  let rec go case =
    let next =
      List.find_opt
        (fun candidate ->
          !attempts < max_attempts
          && begin
               incr attempts;
               still_fails candidate
             end)
        (candidates case)
    in
    match next with
    | Some simpler ->
      incr steps;
      go simpler
    | None -> case
  in
  let minimised = go case in
  { minimised; steps = !steps; attempts = !attempts }
