(* Replayable failure corpus: one JSON case per line, append-only.

   A failing (or shrunken) case is written as a single JSON-lines
   record, so `axi4mlir_fuzz --replay FILE` can re-execute exactly the
   scenarios that failed before. Blank lines and '#' comments are
   tolerated so corpora can be annotated by hand. *)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc errs =
        match input_line ic with
        | exception End_of_file -> (List.rev acc, List.rev errs)
        | line ->
          let trimmed = String.trim line in
          if trimmed = "" || (String.length trimmed > 0 && trimmed.[0] = '#') then
            go (lineno + 1) acc errs
          else (
            match Fuzz_case.of_string_result trimmed with
            | Ok case -> go (lineno + 1) (case :: acc) errs
            | Error msg ->
              go (lineno + 1) acc (Printf.sprintf "%s:%d: %s" path lineno msg :: errs))
      in
      go 1 [] [])

let load_result path =
  match load path with
  | cases_and_errs -> Ok cases_and_errs
  | exception Sys_error msg -> Error msg

let append path case =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (Fuzz_case.to_json case));
      output_char oc '\n')

let save path cases =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun case ->
          output_string oc (Json.to_string (Fuzz_case.to_json case));
          output_char oc '\n')
        cases)
