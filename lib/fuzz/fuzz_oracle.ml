(* The differential oracle.

   Each case is executed three ways on fresh simulated SoCs over the
   same deterministic operand data:

     1. the native CPU reference driver;
     2. the mlir_CPU lowering (lower_linalg_to_loops) interpreted;
     3. the full AXI4MLIR pipeline (match-annotate -> tiling ->
        accel codegen [-> runtime lowering]) driven on the simulated
        accelerator.

   All three must agree element-wise with the pure arithmetic oracle
   (Gold); the accelerated run must additionally satisfy performance-
   counter sanity invariants, and every module the compiler produced
   must survive a print -> parse round trip. A configuration the
   pipeline declines with a structured reason is a [Rejected] outcome,
   which is legal; anything else that is not a clean pass is a bug. *)

type failure =
  | Mismatch of { path : string; max_diff : float }
  | Crash of { path : string; message : string }
  | Invariant of string
  | Roundtrip of string

type outcome = Pass | Rejected of string | Failed of failure list

let failure_to_string = function
  | Mismatch { path; max_diff } ->
    Printf.sprintf "mismatch on %s path (max |diff| = %g)" path max_diff
  | Crash { path; message } -> Printf.sprintf "crash on %s path: %s" path message
  | Invariant msg -> "invariant violated: " ^ msg
  | Roundtrip msg -> "round-trip failure: " ^ msg

let outcome_to_string = function
  | Pass -> "pass"
  | Rejected reason -> "rejected: " ^ reason
  | Failed fs ->
    Printf.sprintf "FAILED (%s)" (String.concat "; " (List.map failure_to_string fs))

let tolerance = 1e-9

(* ------------------------------------------------------------------ *)
(* Configuration and operand data                                      *)
(* ------------------------------------------------------------------ *)

let config_of_case (case : Fuzz_case.t) =
  match
    match case.engine with
    | "conv" -> Presets.conv ~flow:case.flow ()
    | name -> (
      match Accel_matmul.version_of_string name with
      | Some version -> Presets.matmul ~version ~size:case.size ~flow:case.flow ()
      | None -> failwith (Printf.sprintf "unknown engine %s" name))
  with
  | accel ->
    let dma =
      {
        accel.Accel_config.dma with
        Accel_config.input_buffer_size = case.dma_buffer_bytes;
        output_buffer_size = case.dma_buffer_bytes;
      }
    in
    Ok (Host_config.pynq_z2, { accel with Accel_config.dma })
  | exception Failure msg -> Error msg

let fresh_array ~seed n =
  let data = Array.make n 0.0 in
  Gold.fill_deterministic ~seed data;
  data

(* Pure operand data: every execution path copies from these arrays, so
   all paths see bit-identical inputs. *)
type operands = { inputs : float array list; init_out : float array; gold : float array }

let operands_of_case (case : Fuzz_case.t) =
  match case.workload with
  | Fuzz_case.Matmul { m; n; k } ->
    let a = fresh_array ~seed:case.data_seed (m * k) in
    let b = fresh_array ~seed:(case.data_seed + 1) (k * n) in
    let c0 =
      if case.init_c then fresh_array ~seed:(case.data_seed + 2) (m * n)
      else Array.make (m * n) 0.0
    in
    let gold = Array.copy c0 in
    Gold.matmul_acc ~m ~n ~k a b gold;
    { inputs = [ a; b ]; init_out = c0; gold }
  | Fuzz_case.Conv { ic; ihw; oc; fhw; stride } ->
    let i = fresh_array ~seed:case.data_seed (ic * ihw * ihw) in
    let w = fresh_array ~seed:(case.data_seed + 1) (oc * ic * fhw * fhw) in
    let oh = Gold.conv_out ihw ~fhw ~stride in
    let init_out = Array.make (oc * oh * oh) 0.0 in
    let gold = Gold.conv2d ~stride ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw i w in
    { inputs = [ i; w ]; init_out; gold }

let build_module (case : Fuzz_case.t) =
  match case.workload with
  | Fuzz_case.Matmul { m; n; k } -> Axi4mlir.build_matmul_module ~m ~n ~k ()
  | Fuzz_case.Conv { ic; ihw; oc; fhw; stride } ->
    Axi4mlir.build_conv_module ~stride ~n:1 ~ic ~ih:ihw ~iw:ihw ~oc ~fh:fhw ~fw:fhw ()

let alloc_filled bench ~label shape data =
  let view = Axi4mlir.alloc_zero bench ~label shape in
  Memref_view.fill_from view data;
  view

(* Fresh SoC + operand views for one execution path. *)
let setup_path host accel (case : Fuzz_case.t) ops =
  let bench = Axi4mlir.create ~host accel in
  let views =
    match (case.workload, ops.inputs) with
    | Fuzz_case.Matmul { m; n; k }, [ a; b ] ->
      [
        alloc_filled bench ~label:"A" [ m; k ] a;
        alloc_filled bench ~label:"B" [ k; n ] b;
        alloc_filled bench ~label:"C" [ m; n ] ops.init_out;
      ]
    | Fuzz_case.Conv { ic; ihw; oc; fhw; stride }, [ i; w ] ->
      let oh = Gold.conv_out ihw ~fhw ~stride in
      [
        alloc_filled bench ~label:"I" [ 1; ic; ihw; ihw ] i;
        alloc_filled bench ~label:"W" [ oc; ic; fhw; fhw ] w;
        alloc_filled bench ~label:"O" [ 1; oc; oh; oh ] ops.init_out;
      ]
    | _ -> invalid_arg "Fuzz_oracle: malformed operands"
  in
  (bench, views)

let output_view views = List.nth views (List.length views - 1)

let guard ~path f =
  match f () with
  | v -> Ok v
  | exception Interp.Runtime_error msg ->
    Error (Crash { path; message = "interpreter: " ^ msg })
  | exception Failure msg -> Error (Crash { path; message = msg })
  | exception Invalid_argument msg -> Error (Crash { path; message = msg })

(* ------------------------------------------------------------------ *)
(* Performance-counter sanity invariants                               *)
(* ------------------------------------------------------------------ *)

let check_invariants (case : Fuzz_case.t) (c : Perf_counters.t) =
  let problems = ref [] in
  let require cond msg = if not cond then problems := msg :: !problems in
  require (c.Perf_counters.cycles > 0.0) "accel run reported zero cycles";
  require
    (c.Perf_counters.accel_busy_cycles > 0.0)
    "accel run never kept the accelerator busy";
  require (c.Perf_counters.dma_transactions >= 1.0) "accel run issued no DMA transactions";
  require
    (c.Perf_counters.l1_misses <= c.Perf_counters.l1_accesses)
    "more L1 misses than L1 accesses";
  require
    (c.Perf_counters.l2_misses <= c.Perf_counters.l2_accesses)
    "more L2 misses than L2 accesses";
  (* Every input element must cross the DMA at least once, and the full
     output must come back, whatever the stationarity choice. *)
  (match case.workload with
  | Fuzz_case.Matmul { m; n; k } ->
    require
      (c.Perf_counters.dma_words_sent >= float_of_int ((m * k) + (k * n)))
      "DMA sent fewer words than the A and B payloads";
    require
      (c.Perf_counters.dma_words_received >= float_of_int (m * n))
      "DMA received fewer words than the C payload"
  | Fuzz_case.Conv { ic; ihw; oc; fhw; stride } ->
    let oh = Gold.conv_out ihw ~fhw ~stride in
    require
      (c.Perf_counters.dma_words_sent >= float_of_int (oc * ic * fhw * fhw))
      "DMA sent fewer words than the filter payload";
    require
      (c.Perf_counters.dma_words_received >= float_of_int (oc * oh * oh))
      "DMA received fewer words than the output payload");
  List.rev_map (fun msg -> Invariant msg) !problems

(* ------------------------------------------------------------------ *)
(* The three execution paths                                           *)
(* ------------------------------------------------------------------ *)

let run_native host accel case ops =
  guard ~path:"native-cpu" (fun () ->
      let bench, views = setup_path host accel case ops in
      let counters =
        Axi4mlir.measure bench (fun () ->
            match (case.Fuzz_case.workload, views) with
            | Fuzz_case.Matmul _, [ a; b; c ] -> Cpu_reference.matmul bench.Axi4mlir.soc ~a ~b ~c
            | Fuzz_case.Conv { stride; _ }, [ input; filter; output ] ->
              Cpu_reference.conv2d ~stride bench.Axi4mlir.soc ~input ~filter ~output
            | _ -> invalid_arg "Fuzz_oracle: malformed views")
      in
      (Memref_view.to_array (output_view views), counters))

let interp_strategy (case : Fuzz_case.t) =
  if case.copy_specialization then Dma_library.Specialized else Dma_library.Generic

let run_module bench case m views =
  let interp = Interp.create ~copy_strategy:(interp_strategy case) bench.Axi4mlir.soc m in
  let name = Axi4mlir.sole_func_name m in
  let args = List.map (fun v -> Interp.M v) views in
  let counters =
    Axi4mlir.measure bench (fun () ->
        match Interp.try_invoke interp name args with
        | Ok _ -> ()
        | Error msg -> failwith msg)
  in
  counters

let run_cpu_lowered host accel case ops =
  guard ~path:"cpu-lowered" (fun () ->
      let m = Axi4mlir.compile_cpu (build_module case) in
      let bench, views = setup_path host accel case ops in
      let counters = run_module bench case m views in
      (Memref_view.to_array (output_view views), counters, m))

let accel_pipeline host accel (case : Fuzz_case.t) =
  let options =
    {
      Match_annotate.flow = None;
      tile_override = case.tiles;
      cpu_tiling = case.cpu_tiling;
      double_buffer = case.double_buffer;
      on_skip = Some Pipeline.reject;
    }
  in
  Pipeline.make ~accel ~host ~options ~copy_specialization:case.copy_specialization
    ~coalesce_transfers:case.coalesce_transfers ~to_runtime_calls:case.to_runtime_calls ()

(* The metrics registry mirrors the DMA engine's perf-counter bumps
   (see Dma_engine); over a measured run the totals must agree exactly,
   or the two observability surfaces have drifted apart. *)
let metrics_parity (c : Perf_counters.t) =
  let pairs =
    [
      ("sim.dma_transactions", c.Perf_counters.dma_transactions);
      ("sim.dma_words_sent", c.Perf_counters.dma_words_sent);
      ("sim.dma_words_received", c.Perf_counters.dma_words_received);
      ("sim.accel_busy_cycles", c.Perf_counters.accel_busy_cycles);
    ]
  in
  List.filter_map
    (fun (name, field) ->
      let total = Metrics.total name in
      if Float.abs (total -. field) > 1e-6 *. Float.max 1.0 (Float.abs field) then
        Some
          (Invariant
             (Printf.sprintf
                "metrics registry total %s (%g) disagrees with the perf counter (%g)"
                name total field))
      else None)
    pairs

(* Critical-path exactness: every measured accelerated run's event DAG
   must analyze cleanly — the backward walk covers [0, makespan]
   contiguously, the attribution sums to the makespan (both checked
   inside [analyze]), and the path length is exactly the task clock the
   run reported. Holds for blocking and double-buffered schedules
   alike. *)
let critpath_property ~path (bench : Axi4mlir.t) (c : Perf_counters.t) =
  match Critpath.analyze (Soc.critpath_input bench.Axi4mlir.soc) with
  | Error msg -> [ Invariant (Printf.sprintf "critpath (%s): %s" path msg) ]
  | Ok report ->
    let problems = ref [] in
    let require cond msg = if not cond then problems := Invariant msg :: !problems in
    require
      (report.Critpath.rp_makespan = c.Perf_counters.cycles)
      (Printf.sprintf
         "critpath (%s): path makespan %.17g differs from the reported task clock %.17g"
         path report.Critpath.rp_makespan c.Perf_counters.cycles);
    let attributed =
      List.fold_left (fun acc (_, cy) -> acc +. cy) 0.0 report.Critpath.rp_attribution
    in
    require
      (Float.abs (attributed -. report.Critpath.rp_makespan)
      <= 1e-6 *. Float.max 1.0 report.Critpath.rp_makespan)
      (Printf.sprintf "critpath (%s): attribution sums to %.17g, not the makespan %.17g"
         path attributed report.Critpath.rp_makespan);
    List.rev !problems

let run_accel host accel case ops compiled =
  guard ~path:"accel" (fun () ->
      let bench, views = setup_path host accel case ops in
      (* Enable and reset the registry for the measured run so its
         totals cover exactly what the perf counters cover ([measure]
         zeroes the counters when the thunk starts). *)
      let was_enabled = Metrics.enabled Metrics.default in
      Metrics.enable Metrics.default;
      Metrics.reset Metrics.default;
      let counters = run_module bench case compiled views in
      let parity = metrics_parity counters @ critpath_property ~path:"accel" bench counters in
      if not was_enabled then Metrics.disable Metrics.default;
      (Memref_view.to_array (output_view views), counters, parity))

(* Double-buffering differential twin: when a case enables async
   double buffering, recompile and re-run it with the feature off on a
   fresh SoC. Pipelining is a pure schedule change, so the async run
   must produce bit-identical output bytes, move exactly the same
   number of DMA words in total, and never report a longer task clock
   than its blocking twin. *)
let check_double_buffer_twin host accel (case : Fuzz_case.t) ops ~async_output
    ~async_counters =
  let blocking = { case with Fuzz_case.double_buffer = false } in
  match Pipeline.run_result (accel_pipeline host accel blocking) (build_module case) with
  | Error _ -> [] (* the blocking twin was rejected: nothing to compare *)
  | exception Failure msg -> [ Crash { path = "blocking-twin-compile"; message = msg } ]
  | Ok compiled -> (
    let run =
      guard ~path:"blocking-twin" (fun () ->
          let bench, views = setup_path host accel blocking ops in
          let counters = run_module bench blocking compiled views in
          (Memref_view.to_array (output_view views), counters,
           critpath_property ~path:"blocking-twin" bench counters))
    in
    match run with
    | Error f -> [ f ]
    | Ok (blocking_output, bc, twin_critpath) ->
      let problems = ref (List.rev twin_critpath) in
      let require cond msg = if not cond then problems := Invariant msg :: !problems in
      require
        (async_output = blocking_output)
        "double-buffered output differs from the blocking twin";
      let total_words (c : Perf_counters.t) =
        c.Perf_counters.dma_words_sent +. c.Perf_counters.dma_words_received
      in
      require
        (total_words async_counters = total_words bc)
        (Printf.sprintf
           "double buffering changed total DMA traffic (%.0f words async vs %.0f blocking)"
           (total_words async_counters) (total_words bc));
      require
        (async_counters.Perf_counters.cycles <= bc.Perf_counters.cycles)
        (Printf.sprintf
           "double buffering slowed the task clock (%.1f cycles async vs %.1f blocking)"
           async_counters.Perf_counters.cycles bc.Perf_counters.cycles);
      List.rev !problems)

(* ------------------------------------------------------------------ *)
(* Verdict                                                             *)
(* ------------------------------------------------------------------ *)

let compare_output ~path gold output =
  if Array.length gold <> Array.length output then
    [ Mismatch { path; max_diff = infinity } ]
  else
    let diff = Gold.max_abs_diff gold output in
    if diff < tolerance then [] else [ Mismatch { path; max_diff = diff } ]

let roundtrip ~stage m =
  match Fuzz_roundtrip.check ~stage m with Ok () -> [] | Error msg -> [ Roundtrip msg ]

let run (case : Fuzz_case.t) =
  Dialects.register_all ();
  match config_of_case case with
  | Error reason -> Rejected ("configuration: " ^ reason)
  | Ok (host, accel) -> (
    let ops = operands_of_case case in
    let failures = ref [] in
    let add fs = failures := !failures @ fs in
    (* source module must round-trip before any lowering *)
    let source = build_module case in
    add (roundtrip ~stage:"linalg" source);
    (* path 1: native CPU reference *)
    let native =
      match run_native host accel case ops with
      | Ok (output, counters) ->
        add (compare_output ~path:"native-cpu" ops.gold output);
        Some counters
      | Error f ->
        add [ f ];
        None
    in
    (* path 2: mlir_CPU lowering, interpreted *)
    let lowered =
      match run_cpu_lowered host accel case ops with
      | Ok (output, counters, m) ->
        add (roundtrip ~stage:"cpu-lowered" m);
        add (compare_output ~path:"cpu-lowered" ops.gold output);
        Some counters
      | Error f ->
        add [ f ];
        None
    in
    (* the interpreter's cost model must agree exactly with the native
       reference for the plain matmul loop nest (see suite_e2e) *)
    (match (case.workload, native, lowered) with
    | Fuzz_case.Matmul _, Some nc, Some lc ->
      if nc.Perf_counters.cycles <> lc.Perf_counters.cycles then
        add
          [
            Invariant
              (Printf.sprintf "cpu-lowered cycles (%.0f) differ from native cycles (%.0f)"
                 lc.Perf_counters.cycles nc.Perf_counters.cycles);
          ]
    | _ -> ());
    (* path 3: the full accelerator pipeline *)
    match Pipeline.run_result (accel_pipeline host accel case) source with
    | Error reason ->
      if !failures = [] then Rejected reason else Failed !failures
    | exception Failure msg ->
      add [ Crash { path = "accel-compile"; message = msg } ];
      Failed !failures
    | Ok compiled -> (
      add (roundtrip ~stage:"accel-compiled" compiled);
      (match run_accel host accel case ops compiled with
      | Ok (output, counters, parity) ->
        add (compare_output ~path:"accel" ops.gold output);
        add (check_invariants case counters);
        add parity;
        if case.double_buffer then
          add
            (check_double_buffer_twin host accel case ops ~async_output:output
               ~async_counters:counters)
      | Error f -> add [ f ]);
      match !failures with [] -> Pass | fs -> Failed fs))
