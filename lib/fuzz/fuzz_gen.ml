(* Random-but-mostly-valid workload and configuration generators.

   The generator aims the bulk of its cases at the legal configuration
   space (so the differential oracle compares real executions), and a
   deliberate minority at illegal corners — non-dividing tile sizes,
   extents smaller than the accelerator tile, bad override arities — so
   every run also checks that the pipeline rejects those with a
   structured reason instead of mis-executing. *)

type only = Matmul_only | Conv_only

let matmul_versions =
  (* weighted towards the richer engines, which have more flows *)
  [ "v1"; "v2"; "v2"; "v3"; "v3"; "v3"; "v4"; "v4"; "v4" ]

let conv_flows = [ "Ws"; "Os"; "Ns" ]

let dma_buffer_candidates = [ 0x1000; 0x4000; 0xFF00 ]

(* Divisors of [n], smallest first. *)
let divisors n =
  List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let workload_elems = function
  | Fuzz_case.Matmul { m; n; k } -> (m * k) + (k * n) + (m * n)
  | Fuzz_case.Conv { ic; ihw; oc; fhw; _ } ->
    (ic * ihw * ihw) + (oc * ic * fhw * fhw) + (oc * ihw * ihw)

(* A DMA window large enough for the worst coalesced transaction of the
   case (all operand tiles staged in one region, plus opcode words). *)
let choose_dma_buffer rng workload =
  let needed_bytes = 4 * (workload_elems workload + 32) in
  match List.filter (fun b -> b >= needed_bytes) dma_buffer_candidates with
  | [] -> 0xFF00
  | fits -> Fuzz_rng.pick rng fits

let gen_matmul rng =
  let version_name = Fuzz_rng.pick rng matmul_versions in
  let version =
    match Accel_matmul.version_of_string version_name with
    | Some v -> v
    | None -> assert false
  in
  let size = Fuzz_rng.pick rng [ 4; 4; 4; 8; 8; 16 ] in
  let flow = Fuzz_rng.pick rng (Presets.matmul_flows version) in
  let dim () = size * Fuzz_rng.int_range rng 1 4 in
  let m = ref (dim ()) and n = ref (dim ()) and k = ref (dim ()) in
  (* A small minority of cases get one deliberately-illegal extent: the
     pipeline must reject it (non-dividing, or smaller than the tile). *)
  if Fuzz_rng.chance rng 12 then begin
    let awkward =
      if Fuzz_rng.chance rng 60 then (dim ()) + Fuzz_rng.int_range rng 1 (size - 1)
      else Fuzz_rng.int_range rng 1 (size - 1)
    in
    match Fuzz_rng.int_range rng 0 2 with
    | 0 -> m := awkward
    | 1 -> n := awkward
    | _ -> k := awkward
  end;
  let tiles =
    if version = Accel_matmul.V4 && Fuzz_rng.chance rng 35 then
      let tile_for extent =
        if extent mod size = 0 && Fuzz_rng.chance rng 85 then
          (* a multiple of the granule that divides the extent *)
          size * Fuzz_rng.pick rng (divisors (extent / size))
        else (* deliberately non-dividing: must be rejected *)
          size + 1
      in
      Some [ tile_for !m; tile_for !n; tile_for !k ]
    else None
  in
  let workload = Fuzz_case.Matmul { m = !m; n = !n; k = !k } in
  {
    Fuzz_case.engine = version_name;
    size;
    flow;
    workload;
    tiles;
    cpu_tiling = Fuzz_rng.chance rng 80;
    copy_specialization = Fuzz_rng.chance rng 50;
    coalesce_transfers = Fuzz_rng.chance rng 30;
    double_buffer = Fuzz_rng.chance rng 20;
    to_runtime_calls = Fuzz_rng.chance rng 70;
    dma_buffer_bytes = choose_dma_buffer rng workload;
    data_seed = 1 + (Fuzz_rng.bits rng land 0xFFFFFF);
    init_c = Fuzz_rng.chance rng 40;
  }

let gen_conv rng =
  let flow = Fuzz_rng.pick rng conv_flows in
  let fhw = Fuzz_rng.pick rng [ 1; 3 ] in
  let ihw = Fuzz_rng.int_range rng (max 3 fhw) 8 in
  let ic = Fuzz_rng.int_range rng 1 4 in
  let oc = Fuzz_rng.int_range rng 1 3 in
  let stride = if flow = "Ws" && ihw > fhw && Fuzz_rng.chance rng 25 then 2 else 1 in
  let workload = Fuzz_case.Conv { ic; ihw; oc; fhw; stride } in
  {
    Fuzz_case.engine = "conv";
    size = 0;
    flow;
    workload;
    tiles = None;
    cpu_tiling = Fuzz_rng.chance rng 80;
    copy_specialization = Fuzz_rng.chance rng 50;
    coalesce_transfers = false;
    double_buffer = false;
    to_runtime_calls = Fuzz_rng.chance rng 70;
    dma_buffer_bytes = choose_dma_buffer rng workload;
    data_seed = 1 + (Fuzz_rng.bits rng land 0xFFFFFF);
    init_c = false;
  }

let gen ?only rng =
  match only with
  | Some Matmul_only -> gen_matmul rng
  | Some Conv_only -> gen_conv rng
  | None -> if Fuzz_rng.chance rng 75 then gen_matmul rng else gen_conv rng

(* The case at position [index] of the sequence rooted at [seed]. *)
let case_at ?only ~seed ~index () = gen ?only (Fuzz_rng.derive ~seed ~index)
