(* Graph-level fuzzing: random conv-chain graphs executed baseline vs
   residency on fresh SoCs over identical label-seeded data. The
   oracle's invariants:

     1. bit-identity — every graph output byte-equal between the two
        modes (resident patches must reproduce streamed arithmetic
        exactly);
     2. the residency run moves strictly fewer DMA words (it may never
        pay for a transfer the baseline skipped).

   Graphs are adversarial on purpose: branches (a second consumer) and
   exported intermediates break chain eligibility, stride-2 and 1x1
   filters hit the resident-patch indexing corners, and batch 2 swaps
   the executor into weight-stationary node-major order. *)

type case = {
  gc_seed : int;
  gc_batch : int;
  gc_graph : Graph_ir.t;
}

let generate ~seed =
  let rng = Fuzz_rng.create seed in
  let batch = if Fuzz_rng.bool rng then 1 else 2 in
  let tensors = ref [] and nodes = ref [] and outputs = ref [] in
  let next_tensor = ref 0 and next_node = ref 0 in
  let add_tensor ~name ~kind ~shape =
    let id = !next_tensor in
    incr next_tensor;
    tensors :=
      { Graph_ir.tn_id = id; tn_name = name; tn_kind = kind; tn_shape = shape }
      :: !tensors;
    id
  in
  let add_node ~name ~op ~args ~out_shape =
    let out =
      add_tensor ~name:(name ^ ".out") ~kind:Graph_ir.Activation ~shape:out_shape
    in
    let id = !next_node in
    incr next_node;
    nodes :=
      { Graph_ir.nd_id = id; nd_name = name; nd_op = op; nd_args = args; nd_out = out }
      :: !nodes;
    out
  in
  let ic0 = Fuzz_rng.int_range rng 2 5 in
  let hw0 = Fuzz_rng.int_range rng 8 14 in
  let input = add_tensor ~name:"in" ~kind:Graph_ir.Input ~shape:[ ic0; hw0; hw0 ] in
  let nconvs = Fuzz_rng.int_range rng 2 4 in
  let cur = ref input and cur_c = ref ic0 and cur_hw = ref hw0 in
  for j = 1 to nconvs do
    let fhw = if !cur_hw >= 3 && Fuzz_rng.chance rng 70 then 3 else 1 in
    let stride =
      if Fuzz_rng.chance rng 30 && Graph_ir.conv_out !cur_hw ~fhw ~stride:2 >= 1 then 2
      else 1
    in
    let oc = Fuzz_rng.int_range rng 2 5 in
    let ohw = Graph_ir.conv_out !cur_hw ~fhw ~stride in
    let name = Printf.sprintf "conv%d" j in
    let w =
      add_tensor ~name:(name ^ ".w") ~kind:Graph_ir.Weights
        ~shape:[ oc; !cur_c; fhw; fhw ]
    in
    let out =
      add_node ~name ~op:(Graph_ir.Conv { stride }) ~args:[ !cur; w ]
        ~out_shape:[ oc; ohw; ohw ]
    in
    if j < nconvs then begin
      (* adversarial edges: a branch consumer or an exported
         intermediate both make the edge ineligible for chaining *)
      if Fuzz_rng.chance rng 25 then begin
        let tap =
          add_node ~name:(name ^ ".tap") ~op:Graph_ir.Resize ~args:[ out ]
            ~out_shape:[ oc; ohw; ohw ]
        in
        outputs := tap :: !outputs
      end;
      if Fuzz_rng.chance rng 20 then outputs := out :: !outputs
    end;
    cur := out;
    cur_c := oc;
    cur_hw := ohw
  done;
  outputs := !cur :: !outputs;
  let g =
    {
      Graph_ir.g_name = Printf.sprintf "fuzz-graph-%d" seed;
      g_tensors = Array.of_list (List.rev !tensors);
      g_nodes = Array.of_list (List.rev !nodes);
      g_outputs = List.rev !outputs;
    }
  in
  (match Graph_ir.validate g with
  | Ok () -> ()
  | Error msg ->
    failwith (Printf.sprintf "Fuzz_graph: generator produced an invalid graph: %s" msg));
  { gc_seed = seed; gc_batch = batch; gc_graph = g }

let run c =
  let base = Graph_exec.run ~batch:c.gc_batch ~residency:false c.gc_graph in
  let resd = Graph_exec.run ~batch:c.gc_batch ~residency:true c.gc_graph in
  (base, resd)

let check c =
  match run c with
  | base, resd ->
    let bw = Graph_exec.result_dma_words base in
    let rw = Graph_exec.result_dma_words resd in
    if not (Graph_exec.outputs_equal base resd) then
      Error
        (Printf.sprintf "seed %d (batch %d): residency changed output bytes" c.gc_seed
           c.gc_batch)
    else if rw >= bw then
      Error
        (Printf.sprintf
           "seed %d (batch %d): residency moved %.0f DMA words, baseline %.0f"
           c.gc_seed c.gc_batch rw bw)
    else Ok ()
  | exception Failure msg ->
    Error (Printf.sprintf "seed %d (batch %d): crash: %s" c.gc_seed c.gc_batch msg)
