(* Differential property for the autotuner: on any feasible random
   matmul workload, the configuration the tuner returns must

   - instantiate and validate ([Tune_space.config_of_candidate] +
     [Accel_config.validate]);
   - survive the real pipeline (its winning cycles came from an actual
     compile+simulate run, so a rejection would have been filtered);
   - never be slower than the [Heuristics.choose] default — the
     tuner's by-construction guarantee, checked here end to end.

   Cases derive from (seed, index) like every other fuzz property, so
   failures replay exactly. *)

type outcome =
  | Pass
  | Skip of string  (** no baseline and no tuned config: nothing to compare *)
  | Fail of string

let outcome_to_string = function
  | Pass -> "pass"
  | Skip reason -> "skip: " ^ reason
  | Fail reason -> "fail: " ^ reason

let space_at rng =
  (* small spaces keep one case to a handful of simulations *)
  if Fuzz_rng.bool rng then Tune_space.quick
  else { Tune_space.fig13 with Tune_space.sp_engines = [ ("v3", 8); ("v3", 16) ] }

let workload_at rng =
  let dim () = 16 * Fuzz_rng.int_range rng 1 3 in
  Tune_workload.Matmul { m = dim (); n = dim (); k = dim () }

let check_at ~seed ~index =
  let rng = Fuzz_rng.derive ~seed ~index in
  let space = space_at rng in
  let workload = workload_at rng in
  let named = { Tune_workload.wl_label = "fuzz_tune"; wl_workload = workload } in
  let report =
    Tuner.tune
      { Tuner.default_options with Tuner.strategy = Tune_strategy.Grid; space }
      [ named ]
  in
  match report.Tune_report.rp_results with
  | [ result ] -> (
    match result.Tune_report.r_best with
    | None ->
      (* acceptable only when nothing was runnable at all *)
      if result.Tune_report.r_baseline = None then Skip "no runnable candidate"
      else Fail "tuner returned no config although the baseline ran"
    | Some best -> (
      match Tune_space.config_of_candidate best.Tune_report.bs_candidate with
      | Error msg -> Fail (Printf.sprintf "tuned candidate does not instantiate: %s" msg)
      | Ok config -> (
        match Accel_config.validate config with
        | Error msg -> Fail (Printf.sprintf "tuned config invalid: %s" msg)
        | Ok () -> (
          match result.Tune_report.r_baseline with
          | None -> Pass (* heuristic found nothing; the tuner did *)
          | Some (descr, baseline_cycles) ->
            if best.Tune_report.bs_cycles <= baseline_cycles then Pass
            else
              Fail
                (Printf.sprintf
                   "tuned %s (%.0f cycles) is slower than heuristic %s (%.0f cycles)"
                   (Tune_space.candidate_to_string best.Tune_report.bs_candidate)
                   best.Tune_report.bs_cycles descr baseline_cycles)))))
  | _ -> Fail "expected exactly one workload result"
