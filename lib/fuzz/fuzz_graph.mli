(** Graph-level differential fuzzing: random conv-chain graphs run
    baseline vs residency; residency must be bit-identical on every
    graph output and move strictly fewer DMA words. Generated graphs
    include chain-breaking branches and exported intermediates, 1x1 and
    stride-2 convolutions, and both batch 1 (chaining) and batch 2
    (weight-stationary) regimes. *)

type case = {
  gc_seed : int;
  gc_batch : int;
  gc_graph : Graph_ir.t;
}

val generate : seed:int -> case
(** Deterministic per seed. *)

val run : case -> Graph_exec.result * Graph_exec.result
(** [(baseline, residency)]. *)

val check : case -> (unit, string) result
(** Run both modes and enforce the two oracle invariants; [Error]
    carries the seed and the violation. *)
