(* Deterministic splittable PRNG (splitmix64).

   Every fuzz case derives its own stream from (root seed, case index),
   so the case sequence is identical across runs, insensitive to how
   many random draws each individual case consumes, and any case can be
   regenerated in isolation for replay or shrinking. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

(* One case stream per (seed, index): mixing both through splitmix keeps
   neighbouring indices decorrelated. *)
let derive ~seed ~index =
  { state = mix (Int64.add (mix (Int64.of_int seed)) (Int64.of_int (index + 1))) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

(* 62 non-negative bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int_range t lo hi =
  if hi < lo then invalid_arg "Fuzz_rng.int_range: empty range";
  lo + (bits t mod (hi - lo + 1))

let bool t = Int64.logand (next t) 1L = 1L

(* True with probability [pct]/100. *)
let chance t pct = int_range t 1 100 <= pct

let pick t xs =
  match xs with
  | [] -> invalid_arg "Fuzz_rng.pick: empty list"
  | _ -> List.nth xs (int_range t 0 (List.length xs - 1))
