type agent = { name : string; mutable busy_until : float }

type event = {
  ev_seq : int;
  ev_agent : string;
  ev_label : string;
  ev_start : float;
  ev_finish : float;
  ev_not_before : float;
  ev_dep : int option;
  ev_mark : bool;
}

type t = {
  mutable agents : agent list;  (** in registration order (reversed) *)
  mutable log : event list;  (** newest first *)
  mutable next_seq : int;
}

let create () = { agents = []; log = []; next_seq = 0 }

let add_agent t ~name =
  let a = { name; busy_until = 0. } in
  t.agents <- a :: t.agents;
  a

let agent_name a = a.name
let busy_until a = a.busy_until

let schedule t a ?dep ~not_before ~duration ~label () =
  let start = Float.max not_before a.busy_until in
  let finish = start +. duration in
  a.busy_until <- finish;
  let ev =
    {
      ev_seq = t.next_seq;
      ev_agent = a.name;
      ev_label = label;
      ev_start = start;
      ev_finish = finish;
      ev_not_before = not_before;
      ev_dep = dep;
      ev_mark = false;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.log <- ev :: t.log;
  finish

let mark t ?dep ~agent ~start ~finish ~label () =
  let ev =
    {
      ev_seq = t.next_seq;
      ev_agent = agent;
      ev_label = label;
      ev_start = start;
      ev_finish = finish;
      ev_not_before = start;
      ev_dep = dep;
      ev_mark = true;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.log <- ev :: t.log

let last_seq t = t.next_seq - 1

let makespan t = List.fold_left (fun acc a -> Float.max acc a.busy_until) 0. t.agents

let events t =
  List.sort
    (fun a b ->
      match compare a.ev_start b.ev_start with 0 -> compare a.ev_seq b.ev_seq | c -> c)
    t.log

let reset t =
  List.iter (fun a -> a.busy_until <- 0.) t.agents;
  t.log <- [];
  t.next_seq <- 0
