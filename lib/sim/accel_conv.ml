let default_ops_per_cycle = 64.0
let buffer_capacity_elems = 8192
let act_capacity_elems = 16384

type state = {
  mutable fhw : int;
  mutable ic : int;
  mutable stride : int;
  w : float array;
  patch : float array;
  (* resident activation image (accel->accel chaining): [act_c] channel
     planes of [act_h] x [act_w], channel-major *)
  act : float array;
  mutable act_c : int;
  mutable act_h : int;
  mutable act_w : int;
  pending : float Queue.t;  (** computed but not yet released *)
  out : float Queue.t;
}

let slice_len st = st.ic * st.fhw * st.fhw

let reset st =
  st.fhw <- 0;
  st.ic <- 0;
  st.stride <- 1;
  Array.fill st.w 0 (Array.length st.w) 0.0;
  Array.fill st.act 0 (Array.length st.act) 0.0;
  st.act_c <- 0;
  st.act_h <- 0;
  st.act_w <- 0;
  Queue.clear st.pending;
  Queue.clear st.out

let create ?(ops_per_cycle = default_ops_per_cycle) ?(tracer = Trace.noop)
    ?(capacity_elems = buffer_capacity_elems) ?(act_capacity = act_capacity_elems) () =
  let st =
    {
      fhw = 0;
      ic = 0;
      stride = 1;
      w = Array.make capacity_elems 0.0;
      patch = Array.make capacity_elems 0.0;
      act = Array.make act_capacity 0.0;
      act_c = 0;
      act_h = 0;
      act_w = 0;
      pending = Queue.create ();
      out = Queue.create ();
    }
  in
  let check_config () =
    if st.fhw <= 0 || st.ic <= 0 then
      failwith "conv accelerator: fHW/iC not configured before data transfer";
    if slice_len st > capacity_elems then
      failwith
        (Printf.sprintf "conv accelerator: slice iC=%d fHW=%d exceeds capacity %d" st.ic
           st.fhw capacity_elems)
  in
  (* The residency contract: one weight slice, one activation image. *)
  let w_region =
    Accel_device.make_region ~name:"weights" ~capacity_words:capacity_elems
  in
  let act_region =
    Accel_device.make_region ~name:"activations" ~capacity_words:act_capacity
  in
  let reset_all () =
    reset st;
    Accel_device.region_clear w_region;
    Accel_device.region_clear act_region
  in
  (* One output element: the inner product of the weight slice and
     whatever [st.patch] holds, accumulated in c-major (dy, dx) order —
     the order both the streamed and the resident patch paths use, so
     chaining cannot change output bits. *)
  let compute_patch ~src =
    let n = slice_len st in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (st.w.(i) *. st.patch.(i))
    done;
    Queue.push !acc st.pending;
    let c = 2.0 *. float_of_int n /. ops_per_cycle in
    Trace.instant tracer ~cat:"accel" ~track:Trace.accel_track
      ~args:
        [
          ("ic", Trace.Int st.ic);
          ("fhw", Trace.Int st.fhw);
          ("src", Trace.Str src);
          ("accel_cycles", Trace.Num c);
        ]
      "cv_patch";
    c
  in
  let consume words =
    let cycles = ref 0.0 in
    let pos = ref 0 in
    let next () =
      if !pos >= Array.length words then failwith "conv accelerator: truncated transaction";
      let w = words.(!pos) in
      incr pos;
      w
    in
    let read_payload dst n =
      check_config ();
      for i = 0 to n - 1 do
        dst.(i) <- Axi_word.expect_data (next ())
      done
    in
    while !pos < Array.length words do
      let code = Axi_word.expect_inst (next ()) in
      if code = Isa.reset then reset_all ()
      else if code = Isa.cv_set_fhw then st.fhw <- Axi_word.expect_inst (next ())
      else if code = Isa.cv_set_ic then st.ic <- Axi_word.expect_inst (next ())
      else if code = Isa.cv_set_stride then begin
        let s = Axi_word.expect_inst (next ()) in
        if s <= 0 then failwith "conv accelerator: stride must be positive";
        st.stride <- s
      end
      else if code = Isa.cv_load_w then read_payload st.w (slice_len st)
      else if code = Isa.cv_patch then begin
        let n = slice_len st in
        read_payload st.patch n;
        cycles := !cycles +. compute_patch ~src:"stream"
      end
      else if code = Isa.cv_patch_resident then begin
        check_config ();
        let y = Axi_word.expect_inst (next ()) in
        let x = Axi_word.expect_inst (next ()) in
        if st.act_c = 0 then
          failwith "conv accelerator: cv_patch_resident with no resident image";
        if st.act_c <> st.ic then
          failwith
            (Printf.sprintf
               "conv accelerator: resident image has %d channels, iC is %d" st.act_c
               st.ic);
        let y0 = st.stride * y and x0 = st.stride * x in
        if y0 < 0 || x0 < 0 || y0 + st.fhw > st.act_h || x0 + st.fhw > st.act_w then
          failwith
            (Printf.sprintf
               "conv accelerator: resident patch (%d,%d) exceeds the %dx%d image" y x
               st.act_h st.act_w);
        let idx = ref 0 in
        for c = 0 to st.ic - 1 do
          for dy = 0 to st.fhw - 1 do
            for dx = 0 to st.fhw - 1 do
              st.patch.(!idx) <-
                st.act.((((c * st.act_h) + y0 + dy) * st.act_w) + x0 + dx);
              incr idx
            done
          done
        done;
        cycles := !cycles +. compute_patch ~src:"resident"
      end
      else if code = Isa.cv_drain then Queue.transfer st.pending st.out
      else if code = Isa.cv_accept then begin
        let c = Axi_word.expect_inst (next ()) in
        let h = Axi_word.expect_inst (next ()) in
        let w = Axi_word.expect_inst (next ()) in
        let n = c * h * w in
        if c <= 0 || h <= 0 || w <= 0 then
          failwith "conv accelerator: cv_accept dimensions must be positive";
        if n > act_capacity then
          failwith
            (Printf.sprintf
               "conv accelerator: image %dx%dx%d exceeds activation capacity %d" c h w
               act_capacity);
        if Queue.length st.pending <> n then
          failwith
            (Printf.sprintf
               "conv accelerator: cv_accept expects exactly %d pending elements, %d \
                queued"
               n (Queue.length st.pending));
        for i = 0 to n - 1 do
          st.act.(i) <- Queue.pop st.pending
        done;
        st.act_c <- c;
        st.act_h <- h;
        st.act_w <- w;
        (* an on-chip move: one element per MAC lane per cycle *)
        cycles := !cycles +. (float_of_int n /. ops_per_cycle)
      end
      else failwith (Printf.sprintf "conv accelerator: unsupported instruction %s" (Isa.name code))
    done;
    !cycles
  in
  let drain n =
    if Queue.length st.out < n then
      failwith
        (Printf.sprintf "conv accelerator: host requested %d output words, %d available" n
           (Queue.length st.out));
    Array.init n (fun _ -> Queue.pop st.out)
  in
  {
    Accel_device.device_name = "conv2d";
    consume;
    drain;
    available = (fun () -> Queue.length st.out);
    reset_device = reset_all;
    regions = [ w_region; act_region ];
  }
