let default_ops_per_cycle = 64.0
let buffer_capacity_elems = 8192

type state = {
  mutable fhw : int;
  mutable ic : int;
  w : float array;
  patch : float array;
  pending : float Queue.t;  (** computed but not yet released *)
  out : float Queue.t;
}

let slice_len st = st.ic * st.fhw * st.fhw

let reset st =
  st.fhw <- 0;
  st.ic <- 0;
  Array.fill st.w 0 (Array.length st.w) 0.0;
  Queue.clear st.pending;
  Queue.clear st.out

let check_config st =
  if st.fhw <= 0 || st.ic <= 0 then
    failwith "conv accelerator: fHW/iC not configured before data transfer";
  if slice_len st > buffer_capacity_elems then
    failwith
      (Printf.sprintf "conv accelerator: slice iC=%d fHW=%d exceeds capacity %d" st.ic
         st.fhw buffer_capacity_elems)

let create ?(ops_per_cycle = default_ops_per_cycle) ?(tracer = Trace.noop) () =
  let st =
    {
      fhw = 0;
      ic = 0;
      w = Array.make buffer_capacity_elems 0.0;
      patch = Array.make buffer_capacity_elems 0.0;
      pending = Queue.create ();
      out = Queue.create ();
    }
  in
  let consume words =
    let cycles = ref 0.0 in
    let pos = ref 0 in
    let next () =
      if !pos >= Array.length words then failwith "conv accelerator: truncated transaction";
      let w = words.(!pos) in
      incr pos;
      w
    in
    let read_payload dst n =
      check_config st;
      for i = 0 to n - 1 do
        dst.(i) <- Axi_word.expect_data (next ())
      done
    in
    while !pos < Array.length words do
      let code = Axi_word.expect_inst (next ()) in
      if code = Isa.reset then reset st
      else if code = Isa.cv_set_fhw then st.fhw <- Axi_word.expect_inst (next ())
      else if code = Isa.cv_set_ic then st.ic <- Axi_word.expect_inst (next ())
      else if code = Isa.cv_load_w then read_payload st.w (slice_len st)
      else if code = Isa.cv_patch then begin
        let n = slice_len st in
        read_payload st.patch n;
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. (st.w.(i) *. st.patch.(i))
        done;
        Queue.push !acc st.pending;
        let c = 2.0 *. float_of_int n /. ops_per_cycle in
        Trace.instant tracer ~cat:"accel" ~track:Trace.accel_track
          ~args:
            [
              ("ic", Trace.Int st.ic);
              ("fhw", Trace.Int st.fhw);
              ("accel_cycles", Trace.Num c);
            ]
          "cv_patch";
        cycles := !cycles +. c
      end
      else if code = Isa.cv_drain then
        Queue.transfer st.pending st.out
      else failwith (Printf.sprintf "conv accelerator: unsupported instruction %s" (Isa.name code))
    done;
    !cycles
  in
  let drain n =
    if Queue.length st.out < n then
      failwith
        (Printf.sprintf "conv accelerator: host requested %d output words, %d available" n
           (Queue.length st.out));
    Array.init n (fun _ -> Queue.pop st.out)
  in
  {
    Accel_device.device_name = "conv2d";
    consume;
    drain;
    available = (fun () -> Queue.length st.out);
    reset_device = (fun () -> reset st);
  }
