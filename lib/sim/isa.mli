(** Micro-ISA opcode literals of the tile-based accelerators (derived
    from the SECDA-TFLite-style engines of the paper's evaluation,
    Table I and Figs. 6a/15a).

    MatMul engines (C(tM,tN) += A(tM,tK) x B(tK,tN)):
    - v1: only the fully fused instruction {!mm_fused} (no reuse).
    - v2: {!mm_load_a}, {!mm_load_b}, {!mm_compute_drain} (input reuse).
    - v3: adds split {!mm_compute} / {!mm_drain} (output reuse too).
    - v4: as v3 plus runtime tile-size configuration
      ({!mm_set_tm}/{!mm_set_tn}/{!mm_set_tk}, each followed by one
      dimension word) and non-square tiles.

    Conv2D engine (one output channel per weight load):
    - {!cv_set_fhw}/{!cv_set_ic}: configuration, each followed by one
      dimension word;
    - {!cv_load_w}: weight slice (iC*fH*fW elements) for the current
      output channel;
    - {!cv_patch}: input patch (iC*fH*fW elements); computes the inner
      product and queues one output element;
    - {!cv_drain}: releases queued output elements to the stream. *)

val reset : int  (* 0xFF: reset all internal state *)

val mm_fused : int  (* 0x21: payload A then B; compute; drain C *)
val mm_load_a : int  (* 0x22: payload A tile *)
val mm_load_b : int  (* 0x23: payload B tile *)
val mm_drain : int  (* 0x24: stream C out and clear the accumulator *)
val mm_load_b_compute_drain : int  (* 0x25: payload B; compute; drain *)
val mm_compute_drain : int  (* 0x2D: compute; drain *)
val mm_compute : int  (* 0xF0: C += A x B *)
val mm_set_tm : int  (* 0x10 + one word (v4 only) *)
val mm_set_tn : int  (* 0x11 + one word (v4 only) *)
val mm_set_tk : int  (* 0x12 + one word (v4 only) *)

val cv_set_fhw : int  (* 0x20 + one word *)
val cv_set_ic : int  (* 0x16 + one word *)
val cv_set_stride : int  (* 0x17 + one word (resident-patch addressing) *)
val cv_load_w : int  (* 0x01 + weight payload *)
val cv_patch : int  (* 0x46 + patch payload *)
val cv_patch_resident : int
(* 0x47 + two words (y, x): assemble the patch from the resident
   activation image instead of the stream — the accel->accel chaining
   path; the dot product is computed in the same element order as
   {!cv_patch}, so chained results are bit-identical *)

val cv_drain : int  (* 0x08 *)
val cv_accept : int
(* 0x09 + three words (c, h, w): move exactly c*h*w pending output
   elements into the resident activation image (channel-major, the
   order an undrained per-channel pixel sweep produces them in) *)

val name : int -> string
(** Mnemonic for diagnostics; ["unknown(0x..)"] for others. *)
