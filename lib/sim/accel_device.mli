(** Common interface between the DMA engine and accelerator models,
    plus the buffer-residency model the whole-model graph scheduler
    plans against.

    {1 Residency regions}

    A {!region} is the host-visible contract of one on-chip buffer: a
    named capacity-accounted store of tagged tensors (a weight slice, a
    resident activation image). The driver that programs the device is
    responsible for keeping the region in sync with the loads it
    issues — a {!region_lookup} hit means "the device already holds
    this tensor, the transfer can be skipped"; an install that
    overwrites an existing tag invalidates the old copy.

    Allocation is a ring over the capacity: installs claim the next
    contiguous range (wrapping to offset 0 when the tail is too
    short) and evict every overlapped entry in installation order —
    the deterministic eviction ordering the residency tests pin.
    Devices whose hardware holds a single tensor at a time (the conv
    engine's weight slice and activation image) use {!region_replace},
    which displaces everything; the multi-entry ring is the general
    model richer devices can adopt. *)

type entry = {
  en_tag : string;  (** tensor identity, e.g. ["w12/f3"] *)
  en_words : int;
  en_off : int;  (** word offset inside the region *)
  en_seq : int;  (** installation order (monotonic) *)
}

type region = {
  rg_name : string;
  rg_capacity_words : int;
  mutable rg_entries : entry list;
  mutable rg_next_off : int;  (** ring bump pointer *)
  mutable rg_seq : int;
  mutable rg_hits : int;  (** lookup hits (skipped transfers) *)
  mutable rg_misses : int;
  mutable rg_evictions : int;
}

val make_region : name:string -> capacity_words:int -> region
(** Raises [Invalid_argument] on a non-positive capacity. *)

val region_used : region -> int
(** Words currently resident. *)

val region_tags : region -> string list
(** Resident tags in installation order. *)

val region_lookup : region -> tag:string -> int option
(** The tag's word offset when resident ([Some] counts a hit,
    [None] a miss). *)

val region_install : region -> tag:string -> words:int -> (int * string list, string) result
(** Claim space for [tag]: returns its word offset and the evicted
    tags in installation order. Re-installing a resident tag
    invalidates the old copy first. [Error] when [words] exceeds the
    region capacity (capacity-exactly-full succeeds). *)

val region_replace : region -> tag:string -> words:int -> (int * string list, string) result
(** Single-tenant install: evict everything, then install [tag] at
    offset 0. Same capacity rule as {!region_install}. *)

val region_invalidate : region -> tag:string -> unit
val region_clear : region -> unit

(** {1 The device interface} *)

type t = {
  device_name : string;
  consume : Axi_word.t array -> float;
      (** Process one inbound transaction; returns accelerator cycles
          spent on any compute the transaction triggered. Raises
          [Failure] on words the device's ISA cannot decode. *)
  drain : int -> float array;
      (** Remove [n] elements from the output queue. Raises [Failure]
          when fewer are available (host/driver protocol bug). *)
  available : unit -> int;  (** queued output elements *)
  reset_device : unit -> unit;
  regions : region list;
      (** Residency regions, empty for devices without host-managed
          buffer reuse (the matmul engines: every tile load overwrites
          the previous one by construction). *)
}

val find_region : t -> string -> region option
