type t = {
  mutable cycles : float;
  mutable instructions : float;
  mutable branches : float;
  mutable l1_accesses : float;
  mutable l1_misses : float;
  mutable l2_accesses : float;
  mutable l2_misses : float;
  mutable dma_transactions : float;
  mutable dma_words_sent : float;
  mutable dma_words_received : float;
  mutable accel_busy_cycles : float;
  mutable flops : float;
}

let create () =
  {
    cycles = 0.0;
    instructions = 0.0;
    branches = 0.0;
    l1_accesses = 0.0;
    l1_misses = 0.0;
    l2_accesses = 0.0;
    l2_misses = 0.0;
    dma_transactions = 0.0;
    dma_words_sent = 0.0;
    dma_words_received = 0.0;
    accel_busy_cycles = 0.0;
    flops = 0.0;
  }

(* The canonical field list: getters and setters, in declaration order.
   [fields], [of_fields], [to_json], [map2] and [accumulate] all derive
   from this pair, so adding a counter only requires extending these two
   tables (and the record). *)
let getters : (string * (t -> float)) list =
  [
    ("cycles", fun c -> c.cycles);
    ("instructions", fun c -> c.instructions);
    ("branches", fun c -> c.branches);
    ("l1_accesses", fun c -> c.l1_accesses);
    ("l1_misses", fun c -> c.l1_misses);
    ("l2_accesses", fun c -> c.l2_accesses);
    ("l2_misses", fun c -> c.l2_misses);
    ("dma_transactions", fun c -> c.dma_transactions);
    ("dma_words_sent", fun c -> c.dma_words_sent);
    ("dma_words_received", fun c -> c.dma_words_received);
    ("accel_busy_cycles", fun c -> c.accel_busy_cycles);
    ("flops", fun c -> c.flops);
  ]

let setters : (string * (t -> float -> unit)) list =
  [
    ("cycles", fun c v -> c.cycles <- v);
    ("instructions", fun c v -> c.instructions <- v);
    ("branches", fun c v -> c.branches <- v);
    ("l1_accesses", fun c v -> c.l1_accesses <- v);
    ("l1_misses", fun c v -> c.l1_misses <- v);
    ("l2_accesses", fun c v -> c.l2_accesses <- v);
    ("l2_misses", fun c v -> c.l2_misses <- v);
    ("dma_transactions", fun c v -> c.dma_transactions <- v);
    ("dma_words_sent", fun c v -> c.dma_words_sent <- v);
    ("dma_words_received", fun c v -> c.dma_words_received <- v);
    ("accel_busy_cycles", fun c v -> c.accel_busy_cycles <- v);
    ("flops", fun c v -> c.flops <- v);
  ]

let field_names = List.map fst getters

let fields c = List.map (fun (name, get) -> (name, get c)) getters

let of_fields kvs =
  let c = create () in
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name setters with
      | Some set -> set c v
      | None -> invalid_arg (Printf.sprintf "Perf_counters.of_fields: unknown field %s" name))
    kvs;
  c

let reset c = List.iter (fun (_, set) -> set c 0.0) setters

let copy c = { c with cycles = c.cycles }

let to_json c = Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) (fields c))

let of_json_result json =
  match json with
  | Json.Obj kvs ->
    let c = create () in
    let rec fill = function
      | [] -> Ok c
      | (name, v) :: rest -> (
        match List.assoc_opt name setters with
        | None -> Error (Printf.sprintf "perf_counters.%s: unknown counter" name)
        | Some set -> (
          match Json.to_float v with
          | value ->
            set c value;
            fill rest
          | exception Json.Type_error msg ->
            Error (Printf.sprintf "perf_counters.%s: %s" name msg)))
    in
    fill kvs
  | _ -> Error "perf_counters: expected a JSON object"

let of_json json =
  match of_json_result json with Ok c -> c | Error msg -> invalid_arg msg

let cache_references c = c.l1_accesses +. c.l2_accesses

let task_clock_ms c ~cpu_freq_mhz = c.cycles /. (cpu_freq_mhz *. 1000.0)

let map2 f a b =
  of_fields (List.map (fun (name, get) -> (name, f (get a) (get b))) getters)

let add a b = map2 ( +. ) a b

let diff a b = map2 ( -. ) a b

let scale a factor = map2 (fun x _ -> x *. factor) a a

let accumulate target delta =
  List.iter2
    (fun (_, get) (_, set) -> set target (get target +. get delta))
    getters setters

let to_string c =
  Printf.sprintf
    "cycles=%.0f branches=%.0f cache_refs=%.0f (L1 %.0f/%.0f miss, L2 %.0f/%.0f miss) \
     dma_txn=%.0f words=%.0f/%.0f accel_cycles=%.0f flops=%.0f"
    c.cycles c.branches (cache_references c) c.l1_accesses c.l1_misses c.l2_accesses
    c.l2_misses c.dma_transactions c.dma_words_sent c.dma_words_received
    c.accel_busy_cycles c.flops
