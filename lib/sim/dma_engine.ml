type token = int

(* A token-tracked asynchronous transfer. [fl_window] is the staged
   word range in the input region (sends only) — used to detect staging
   into a half that is still streaming out. *)
type flight = {
  fl_dir : [ `Send | `Recv ];
  fl_window : int * int;
  fl_finish : float;  (* transfer completion, CPU cycles *)
  fl_data : float array;  (* drained output (recv tokens) *)
  fl_seq : int;  (* timeline seq of the transfer event (dep edges) *)
  fl_flow : int;  (* trace flow-arrow id, unique per recording sink *)
  mutable fl_waited : bool;
}

type t = {
  cost : Cost_model.t;
  counters : Perf_counters.t;
  tracer : Trace.t;
  dev : Accel_device.t;
  dma_id : int;
  timeline : Timeline.t;
  dma_agent : Timeline.agent;
  accel_agent : Timeline.agent;
  in_region : Axi_word.t array;
  out_capacity : int;
  mutable high_water : int;  (* staged words since last send *)
  mutable batch_lo : int;  (* lowest staged offset since last send *)
  mutable ready_at : float;  (* CPU-cycle time at which device output is ready *)
  mutable pending_send : (int * int) option;  (* offset, len *)
  mutable pending_recv : int option;  (* len *)
  mutable send_done_at : float;  (* completion time of an async send *)
  flights : (token, flight) Hashtbl.t;
  mutable next_token : int;
  completions : (float * int) Queue.t;
      (* per-batch device (completion time, compute event seq) pairs,
         pushed in consume order by token sends and popped by (token or
         blocking) receives *)
  mutable last_compute_seq : int option;
      (* timeline seq of the most recent device compute event, for dep
         edges on receives that drain [ready_at] directly *)
}

let create ~cost ~counters ?tracer ?timeline ?(dma_id = 0) ~device ~in_capacity_words
    ~out_capacity_words () =
  let tracer = match tracer with Some t -> t | None -> Trace.noop in
  let timeline = match timeline with Some tl -> tl | None -> Timeline.create () in
  {
    cost;
    counters;
    tracer;
    dev = device;
    dma_id;
    timeline;
    dma_agent = Timeline.add_agent timeline ~name:(Printf.sprintf "dma%d" dma_id);
    accel_agent = Timeline.add_agent timeline ~name:device.Accel_device.device_name;
    in_region = Array.make in_capacity_words (Axi_word.Inst 0);
    out_capacity = out_capacity_words;
    high_water = 0;
    batch_lo = max_int;
    ready_at = 0.0;
    pending_send = None;
    pending_recv = None;
    send_done_at = 0.0;
    flights = Hashtbl.create 16;
    next_token = 0;
    completions = Queue.create ();
    last_compute_seq = None;
  }

(* Host-clock marks: annotate what an interval of the serial counter
   was spent on, for the critical-path analysis. Marks never move any
   clock or counter — blocking runs stay bit-identical (the timeline's
   makespan ignores marks). Every charge to [t.counters.cycles] below
   that is not plain host compute pairs with exactly one mark whose
   boundaries reuse the very floats the charge computed, so the
   analyzer's exact-contiguity invariant holds. *)
let mark t ?dep ~start ~finish label =
  Timeline.mark t.timeline ?dep ~agent:"host" ~start ~finish ~label ()

let device t = t.dev
let in_capacity_words t = Array.length t.in_region

(* Registry mirrors of the perf-counter bumps below. The metric totals
   must stay exactly equal to the corresponding Perf_counters fields
   over a measured run — the fuzz oracle asserts it — so every counter
   update site pairs with one of these. *)
let m_transaction () = Metrics.incr "sim.dma_transactions"
let m_words_sent len = Metrics.incr "sim.dma_words_sent" ~by:(float_of_int len)
let m_words_received len = Metrics.incr "sim.dma_words_received" ~by:(float_of_int len)
let m_accel_busy cycles = Metrics.incr "sim.accel_busy_cycles" ~by:cycles

(* A transfer the residency planner proved unnecessary: nothing is
   staged, no words move, no counters are charged — the saving is a
   genuinely absent transaction. This only leaves a marker on the DMA
   channel's trace track (and a metric) so the timeline shows *why*
   the words are missing. *)
let note_skipped t ~words ~what =
  Metrics.incr "sim.dma_words_skipped"
    ~by:(float_of_int words)
    ~labels:[ ("what", what) ];
  Trace.instant t.tracer ~cat:"residency"
    ~track:(Trace.dma_channel_track t.dma_id)
    ~args:[ ("words", Trace.Int words); ("what", Trace.Str what) ]
    "residency_skip"

let stage t ~offset word =
  if offset < 0 || offset >= Array.length t.in_region then
    failwith
      (Printf.sprintf "DMA input region overflow: offset %d, capacity %d" offset
         (Array.length t.in_region));
  t.in_region.(offset) <- word;
  if offset + 1 > t.high_water then t.high_water <- offset + 1;
  if offset < t.batch_lo then t.batch_lo <- offset

let staged_high_water t = t.high_water

(* Record the device's busy window on the accelerator track: it starts
   when the stream has arrived (or when the device frees up) and runs
   concurrently with the host from then on. *)
let note_accel_busy t ~accel_cycles ~start ~until =
  if accel_cycles > 0.0 then
    Trace.complete t.tracer ~cat:"accel_busy" ~track:Trace.accel_track
      ~args:[ ("accel_cycles", Trace.Num accel_cycles) ]
      ~ts:start ~dur:(until -. start) t.dev.Accel_device.device_name

let start_send t ~offset ~len_words =
  if t.pending_send <> None then failwith "DMA engine: send already in flight";
  if offset < 0 || offset + len_words > Array.length t.in_region then
    failwith "DMA engine: send range exceeds input region";
  Trace.begin_span t.tracer ~cat:"dma_send"
    ~args:[ ("len_words", Trace.Int len_words) ]
    "program_send";
  let t0 = t.counters.cycles in
  t.counters.cycles <- t0 +. t.cost.dma_program_cycles;
  mark t ~start:t0 ~finish:t.counters.cycles "program_send";
  t.counters.instructions <- t.counters.instructions +. 20.0;
  t.counters.dma_transactions <- t.counters.dma_transactions +. 1.0;
  m_transaction ();
  Trace.end_span t.tracer;
  t.pending_send <- Some (offset, len_words)

let wait_send t =
  match t.pending_send with
  | None -> failwith "DMA engine: wait_send without a pending send"
  | Some (offset, len) ->
    t.pending_send <- None;
    Trace.begin_span t.tracer ~cat:"dma_send"
      ~args:[ ("len_words", Trace.Int len) ]
      "wait_send";
    let transfer = float_of_int len *. Cost_model.cpu_cycles_per_word t.cost in
    let t0 = t.counters.cycles in
    t.counters.cycles <- t0 +. transfer +. t.cost.dma_wait_cycles;
    mark t ~start:t0 ~finish:(t0 +. transfer) "host_send";
    mark t ~start:(t0 +. transfer) ~finish:t.counters.cycles "dma_poll";
    t.counters.dma_words_sent <- t.counters.dma_words_sent +. float_of_int len;
    m_words_sent len;
    Metrics.observe "sim.dma_send_len_words" (float_of_int len);
    let words = Array.sub t.in_region offset len in
    let accel_cycles = t.dev.Accel_device.consume words in
    t.counters.accel_busy_cycles <- t.counters.accel_busy_cycles +. accel_cycles;
    m_accel_busy accel_cycles;
    (* The device starts processing when the stream arrives and runs
       concurrently with the host from then on. *)
    let start = Float.max t.counters.cycles t.ready_at in
    t.ready_at <- start +. Cost_model.accel_to_cpu_cycles t.cost accel_cycles;
    note_accel_busy t ~accel_cycles ~start ~until:t.ready_at;
    Trace.end_span t.tracer

let send_staged t =
  let len = t.high_water in
  if len > 0 then begin
    start_send t ~offset:0 ~len_words:len;
    wait_send t
  end;
  t.high_water <- 0;
  t.batch_lo <- max_int

let sync_sends t =
  if t.send_done_at > t.counters.cycles then begin
    mark t ~start:t.counters.cycles ~finish:t.send_done_at "send_sync";
    t.counters.cycles <- t.send_done_at
  end

let send_staged_async t =
  let len = t.high_water in
  if len > 0 then begin
    Trace.begin_span t.tracer ~cat:"dma_send"
      ~args:[ ("len_words", Trace.Int len); ("async", Trace.Bool true) ]
      "send_async";
    (* only two buffer halves: wait out any transfer still in flight *)
    sync_sends t;
    let t0 = t.counters.cycles in
    t.counters.cycles <- t0 +. t.cost.dma_program_cycles;
    mark t ~start:t0 ~finish:t.counters.cycles "program_send";
    t.counters.instructions <- t.counters.instructions +. 20.0;
    t.counters.dma_transactions <- t.counters.dma_transactions +. 1.0;
    t.counters.dma_words_sent <- t.counters.dma_words_sent +. float_of_int len;
    m_transaction ();
    m_words_sent len;
    Metrics.observe "sim.dma_send_len_words" (float_of_int len);
    let transfer = float_of_int len *. Cost_model.cpu_cycles_per_word t.cost in
    t.send_done_at <- t.counters.cycles +. transfer;
    let words = Array.sub t.in_region 0 len in
    let accel_cycles = t.dev.Accel_device.consume words in
    t.counters.accel_busy_cycles <- t.counters.accel_busy_cycles +. accel_cycles;
    m_accel_busy accel_cycles;
    (* the device starts once the stream has fully arrived *)
    let start = Float.max t.send_done_at t.ready_at in
    t.ready_at <- start +. Cost_model.accel_to_cpu_cycles t.cost accel_cycles;
    note_accel_busy t ~accel_cycles ~start ~until:t.ready_at;
    Trace.end_span t.tracer
  end;
  t.high_water <- 0;
  t.batch_lo <- max_int

let start_recv t ~len_words =
  if t.pending_recv <> None then failwith "DMA engine: recv already in flight";
  if len_words > t.out_capacity then failwith "DMA engine: recv exceeds output region";
  Trace.begin_span t.tracer ~cat:"dma_recv"
    ~args:[ ("len_words", Trace.Int len_words) ]
    "program_recv";
  let t0 = t.counters.cycles in
  t.counters.cycles <- t0 +. t.cost.dma_program_cycles;
  mark t ~start:t0 ~finish:t.counters.cycles "program_recv";
  t.counters.instructions <- t.counters.instructions +. 20.0;
  t.counters.dma_transactions <- t.counters.dma_transactions +. 1.0;
  m_transaction ();
  Trace.end_span t.tracer;
  t.pending_recv <- Some len_words

let wait_recv t =
  match t.pending_recv with
  | None -> failwith "DMA engine: wait_recv without a pending recv"
  | Some len ->
    t.pending_recv <- None;
    Trace.begin_span t.tracer ~cat:"dma_recv"
      ~args:[ ("len_words", Trace.Int len) ]
      "wait_recv";
    (* A blocking receive stalls to [ready_at], which dominates every
       queued completion, so it consumes the whole FIFO; pure-blocking
       runs are untouched — the queue is empty there. *)
    Queue.clear t.completions;
    (* Receives observe completed sends. *)
    sync_sends t;
    (* Stall until the device has finished computing its queued work;
       this is the host's visible wait for the accelerator, so it gets
       its own phase. *)
    Trace.begin_span t.tracer ~cat:"accel_wait" "accel_stall";
    if t.ready_at > t.counters.cycles then begin
      mark t ~start:t.counters.cycles ~finish:t.ready_at "accel_stall";
      t.counters.cycles <- t.ready_at
    end;
    Trace.end_span t.tracer;
    let transfer = float_of_int len *. Cost_model.cpu_cycles_per_word t.cost in
    let t0 = t.counters.cycles in
    t.counters.cycles <- t0 +. transfer +. t.cost.dma_wait_cycles;
    mark t ~start:t0 ~finish:(t0 +. transfer) "host_recv";
    mark t ~start:(t0 +. transfer) ~finish:t.counters.cycles "dma_poll";
    t.counters.dma_words_received <- t.counters.dma_words_received +. float_of_int len;
    m_words_received len;
    Metrics.observe "sim.dma_recv_len_words" (float_of_int len);
    let data = t.dev.Accel_device.drain len in
    Trace.end_span t.tracer;
    data

(* ------------------------------------------------------------------ *)
(* Non-blocking (token) transfers                                      *)
(* ------------------------------------------------------------------ *)

(* Reading the DMA status register when the transfer has already
   drained: one uncached load and a branch, versus the full
   [dma_wait_cycles] poll loop a blocking wait pays. *)
let status_check_cycles = 50.0

let ranges_overlap (a_lo, a_hi) (b_lo, b_hi) = a_lo < b_hi && b_lo < a_hi

let register_flight t fl =
  let tok = t.next_token in
  t.next_token <- tok + 1;
  Hashtbl.replace t.flights tok fl;
  tok

let charge_program t ~label =
  let t0 = t.counters.cycles in
  t.counters.cycles <- t0 +. t.cost.dma_program_cycles;
  mark t ~start:t0 ~finish:t.counters.cycles label;
  t.counters.instructions <- t.counters.instructions +. 20.0;
  t.counters.dma_transactions <- t.counters.dma_transactions +. 1.0;
  m_transaction ()

let start_send_token t =
  let lo = if t.batch_lo = max_int then 0 else t.batch_lo in
  let len = max 0 (t.high_water - lo) in
  t.high_water <- 0;
  t.batch_lo <- max_int;
  Hashtbl.iter
    (fun _ fl ->
      if (not fl.fl_waited) && fl.fl_dir = `Send && ranges_overlap fl.fl_window (lo, lo + len)
      then failwith "DMA engine: staged batch overlaps a send still in flight")
    t.flights;
  charge_program t ~label:"program_send";
  t.counters.dma_words_sent <- t.counters.dma_words_sent +. float_of_int len;
  m_words_sent len;
  Metrics.observe "sim.dma_send_len_words" (float_of_int len);
  let transfer = float_of_int len *. Cost_model.cpu_cycles_per_word t.cost in
  let tstart = Float.max t.counters.cycles (Timeline.busy_until t.dma_agent) in
  let tfinish =
    Timeline.schedule t.timeline t.dma_agent ~not_before:t.counters.cycles
      ~duration:transfer ~label:"send" ()
  in
  let tseq = Timeline.last_seq t.timeline in
  let words = Array.sub t.in_region lo len in
  let accel_cycles = t.dev.Accel_device.consume words in
  t.counters.accel_busy_cycles <- t.counters.accel_busy_cycles +. accel_cycles;
  m_accel_busy accel_cycles;
  if accel_cycles > 0.0 then begin
    let not_before = Float.max tfinish t.ready_at in
    let astart = Float.max not_before (Timeline.busy_until t.accel_agent) in
    let afinish =
      Timeline.schedule t.timeline t.accel_agent ~dep:tseq ~not_before
        ~duration:(Cost_model.accel_to_cpu_cycles t.cost accel_cycles)
        ~label:"compute" ()
    in
    let cseq = Timeline.last_seq t.timeline in
    t.ready_at <- afinish;
    t.last_compute_seq <- Some cseq;
    Queue.push (afinish, cseq) t.completions;
    Trace.complete t.tracer ~cat:"accel_busy"
      ~track:(Trace.accel_device_track t.dma_id)
      ~args:[ ("accel_cycles", Trace.Num accel_cycles) ]
      ~ts:astart ~dur:(afinish -. astart) t.dev.Accel_device.device_name
  end;
  let flow = Trace.fresh_flow_id t.tracer in
  let tok =
    register_flight t
      {
        fl_dir = `Send;
        fl_window = (lo, lo + len);
        fl_finish = tfinish;
        fl_data = [||];
        fl_seq = tseq;
        fl_flow = flow;
        fl_waited = false;
      }
  in
  Trace.complete t.tracer ~cat:"dma_async"
    ~track:(Trace.dma_channel_track t.dma_id)
    ~args:[ ("len_words", Trace.Int len); ("token", Trace.Int tok) ]
    ~ts:tstart ~dur:transfer "async_send";
  Trace.flow_start t.tracer
    ~track:(Trace.dma_channel_track t.dma_id)
    ~ts:(tstart +. (transfer /. 2.0))
    ~id:flow "dma_token";
  tok

let start_recv_token t ~len_words =
  if len_words > t.out_capacity then failwith "DMA engine: recv exceeds output region";
  charge_program t ~label:"program_recv";
  t.counters.dma_words_received <- t.counters.dma_words_received +. float_of_int len_words;
  m_words_received len_words;
  Metrics.observe "sim.dma_recv_len_words" (float_of_int len_words);
  (* The batch this receive drains is the oldest undrained compute. *)
  let completion, dep =
    if Queue.is_empty t.completions then (t.ready_at, t.last_compute_seq)
    else
      let finish, cseq = Queue.pop t.completions in
      (finish, Some cseq)
  in
  let transfer = float_of_int len_words *. Cost_model.cpu_cycles_per_word t.cost in
  let not_before = Float.max t.counters.cycles completion in
  let tstart = Float.max not_before (Timeline.busy_until t.dma_agent) in
  let tfinish =
    Timeline.schedule t.timeline t.dma_agent ?dep ~not_before ~duration:transfer
      ~label:"recv" ()
  in
  let tseq = Timeline.last_seq t.timeline in
  let data = t.dev.Accel_device.drain len_words in
  let flow = Trace.fresh_flow_id t.tracer in
  let tok =
    register_flight t
      {
        fl_dir = `Recv;
        fl_window = (0, 0);
        fl_finish = tfinish;
        fl_data = data;
        fl_seq = tseq;
        fl_flow = flow;
        fl_waited = false;
      }
  in
  Trace.complete t.tracer ~cat:"dma_async"
    ~track:(Trace.dma_channel_track t.dma_id)
    ~args:[ ("len_words", Trace.Int len_words); ("token", Trace.Int tok) ]
    ~ts:tstart ~dur:transfer "async_recv";
  Trace.flow_start t.tracer
    ~track:(Trace.dma_channel_track t.dma_id)
    ~ts:(tstart +. (transfer /. 2.0))
    ~id:flow "dma_token";
  tok

let wait_token t tok =
  match Hashtbl.find_opt t.flights tok with
  | None -> failwith "DMA engine: wait on an unknown token"
  | Some fl when fl.fl_waited -> failwith "DMA engine: token already waited"
  | Some fl ->
    fl.fl_waited <- true;
    let now = t.counters.cycles in
    if fl.fl_finish > now then begin
      (* Transfer still in flight: stall to completion and pay the full
         poll, exactly as a blocking wait would. The stall mark carries
         a dep edge to the transfer it shadows, so the critical-path
         walk jumps through it into the agent chain. *)
      t.counters.cycles <- fl.fl_finish +. t.cost.dma_wait_cycles;
      mark t ~dep:fl.fl_seq ~start:now ~finish:fl.fl_finish "token_stall";
      mark t ~start:fl.fl_finish ~finish:t.counters.cycles "dma_poll";
      t.counters.instructions <- t.counters.instructions +. 4.0
    end
    else begin
      t.counters.cycles <- now +. status_check_cycles;
      mark t ~start:now ~finish:t.counters.cycles "status_check";
      t.counters.instructions <- t.counters.instructions +. 4.0
    end;
    Trace.flow_finish t.tracer ~track:Trace.host_track ~id:fl.fl_flow "dma_token";
    Trace.instant t.tracer ~cat:"dma_async"
      ~args:[ ("token", Trace.Int tok) ]
      "wait";
    fl.fl_data

let outstanding_tokens t =
  Hashtbl.fold (fun tok fl acc -> if fl.fl_waited then acc else tok :: acc) t.flights []
  |> List.sort compare

let reset_device t =
  t.dev.Accel_device.reset_device ();
  t.high_water <- 0;
  t.batch_lo <- max_int;
  t.ready_at <- 0.0;
  t.pending_send <- None;
  t.pending_recv <- None;
  t.send_done_at <- 0.0;
  Hashtbl.reset t.flights;
  t.next_token <- 0;
  Queue.clear t.completions;
  t.last_compute_seq <- None
