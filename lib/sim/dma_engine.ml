type t = {
  cost : Cost_model.t;
  counters : Perf_counters.t;
  tracer : Trace.t;
  dev : Accel_device.t;
  in_region : Axi_word.t array;
  out_capacity : int;
  mutable high_water : int;  (* staged words since last send *)
  mutable ready_at : float;  (* CPU-cycle time at which device output is ready *)
  mutable pending_send : (int * int) option;  (* offset, len *)
  mutable pending_recv : int option;  (* len *)
  mutable send_done_at : float;  (* completion time of an async send *)
}

let create ~cost ~counters ?tracer ~device ~in_capacity_words ~out_capacity_words () =
  let tracer = match tracer with Some t -> t | None -> Trace.noop in
  {
    cost;
    counters;
    tracer;
    dev = device;
    in_region = Array.make in_capacity_words (Axi_word.Inst 0);
    out_capacity = out_capacity_words;
    high_water = 0;
    ready_at = 0.0;
    pending_send = None;
    pending_recv = None;
    send_done_at = 0.0;
  }

let device t = t.dev
let in_capacity_words t = Array.length t.in_region

(* Registry mirrors of the perf-counter bumps below. The metric totals
   must stay exactly equal to the corresponding Perf_counters fields
   over a measured run — the fuzz oracle asserts it — so every counter
   update site pairs with one of these. *)
let m_transaction () = Metrics.incr "sim.dma_transactions"
let m_words_sent len = Metrics.incr "sim.dma_words_sent" ~by:(float_of_int len)
let m_words_received len = Metrics.incr "sim.dma_words_received" ~by:(float_of_int len)
let m_accel_busy cycles = Metrics.incr "sim.accel_busy_cycles" ~by:cycles

let stage t ~offset word =
  if offset < 0 || offset >= Array.length t.in_region then
    failwith
      (Printf.sprintf "DMA input region overflow: offset %d, capacity %d" offset
         (Array.length t.in_region));
  t.in_region.(offset) <- word;
  if offset + 1 > t.high_water then t.high_water <- offset + 1

let staged_high_water t = t.high_water

(* Record the device's busy window on the accelerator track: it starts
   when the stream has arrived (or when the device frees up) and runs
   concurrently with the host from then on. *)
let note_accel_busy t ~accel_cycles ~start ~until =
  if accel_cycles > 0.0 then
    Trace.complete t.tracer ~cat:"accel_busy" ~track:Trace.accel_track
      ~args:[ ("accel_cycles", Trace.Num accel_cycles) ]
      ~ts:start ~dur:(until -. start) t.dev.Accel_device.device_name

let start_send t ~offset ~len_words =
  if t.pending_send <> None then failwith "DMA engine: send already in flight";
  if offset < 0 || offset + len_words > Array.length t.in_region then
    failwith "DMA engine: send range exceeds input region";
  Trace.begin_span t.tracer ~cat:"dma_send"
    ~args:[ ("len_words", Trace.Int len_words) ]
    "program_send";
  t.counters.cycles <- t.counters.cycles +. t.cost.dma_program_cycles;
  t.counters.instructions <- t.counters.instructions +. 20.0;
  t.counters.dma_transactions <- t.counters.dma_transactions +. 1.0;
  m_transaction ();
  Trace.end_span t.tracer;
  t.pending_send <- Some (offset, len_words)

let wait_send t =
  match t.pending_send with
  | None -> failwith "DMA engine: wait_send without a pending send"
  | Some (offset, len) ->
    t.pending_send <- None;
    Trace.begin_span t.tracer ~cat:"dma_send"
      ~args:[ ("len_words", Trace.Int len) ]
      "wait_send";
    let transfer = float_of_int len *. Cost_model.cpu_cycles_per_word t.cost in
    t.counters.cycles <- t.counters.cycles +. transfer +. t.cost.dma_wait_cycles;
    t.counters.dma_words_sent <- t.counters.dma_words_sent +. float_of_int len;
    m_words_sent len;
    Metrics.observe "sim.dma_send_len_words" (float_of_int len);
    let words = Array.sub t.in_region offset len in
    let accel_cycles = t.dev.Accel_device.consume words in
    t.counters.accel_busy_cycles <- t.counters.accel_busy_cycles +. accel_cycles;
    m_accel_busy accel_cycles;
    (* The device starts processing when the stream arrives and runs
       concurrently with the host from then on. *)
    let start = Float.max t.counters.cycles t.ready_at in
    t.ready_at <- start +. Cost_model.accel_to_cpu_cycles t.cost accel_cycles;
    note_accel_busy t ~accel_cycles ~start ~until:t.ready_at;
    Trace.end_span t.tracer

let send_staged t =
  let len = t.high_water in
  if len > 0 then begin
    start_send t ~offset:0 ~len_words:len;
    wait_send t
  end;
  t.high_water <- 0

let sync_sends t =
  if t.send_done_at > t.counters.cycles then t.counters.cycles <- t.send_done_at

let send_staged_async t =
  let len = t.high_water in
  if len > 0 then begin
    Trace.begin_span t.tracer ~cat:"dma_send"
      ~args:[ ("len_words", Trace.Int len); ("async", Trace.Bool true) ]
      "send_async";
    (* only two buffer halves: wait out any transfer still in flight *)
    sync_sends t;
    t.counters.cycles <- t.counters.cycles +. t.cost.dma_program_cycles;
    t.counters.instructions <- t.counters.instructions +. 20.0;
    t.counters.dma_transactions <- t.counters.dma_transactions +. 1.0;
    t.counters.dma_words_sent <- t.counters.dma_words_sent +. float_of_int len;
    m_transaction ();
    m_words_sent len;
    Metrics.observe "sim.dma_send_len_words" (float_of_int len);
    let transfer = float_of_int len *. Cost_model.cpu_cycles_per_word t.cost in
    t.send_done_at <- t.counters.cycles +. transfer;
    let words = Array.sub t.in_region 0 len in
    let accel_cycles = t.dev.Accel_device.consume words in
    t.counters.accel_busy_cycles <- t.counters.accel_busy_cycles +. accel_cycles;
    m_accel_busy accel_cycles;
    (* the device starts once the stream has fully arrived *)
    let start = Float.max t.send_done_at t.ready_at in
    t.ready_at <- start +. Cost_model.accel_to_cpu_cycles t.cost accel_cycles;
    note_accel_busy t ~accel_cycles ~start ~until:t.ready_at;
    Trace.end_span t.tracer
  end;
  t.high_water <- 0

let start_recv t ~len_words =
  if t.pending_recv <> None then failwith "DMA engine: recv already in flight";
  if len_words > t.out_capacity then failwith "DMA engine: recv exceeds output region";
  Trace.begin_span t.tracer ~cat:"dma_recv"
    ~args:[ ("len_words", Trace.Int len_words) ]
    "program_recv";
  t.counters.cycles <- t.counters.cycles +. t.cost.dma_program_cycles;
  t.counters.instructions <- t.counters.instructions +. 20.0;
  t.counters.dma_transactions <- t.counters.dma_transactions +. 1.0;
  m_transaction ();
  Trace.end_span t.tracer;
  t.pending_recv <- Some len_words

let wait_recv t =
  match t.pending_recv with
  | None -> failwith "DMA engine: wait_recv without a pending recv"
  | Some len ->
    t.pending_recv <- None;
    Trace.begin_span t.tracer ~cat:"dma_recv"
      ~args:[ ("len_words", Trace.Int len) ]
      "wait_recv";
    (* Receives observe completed sends. *)
    sync_sends t;
    (* Stall until the device has finished computing its queued work;
       this is the host's visible wait for the accelerator, so it gets
       its own phase. *)
    Trace.begin_span t.tracer ~cat:"accel_wait" "accel_stall";
    if t.ready_at > t.counters.cycles then t.counters.cycles <- t.ready_at;
    Trace.end_span t.tracer;
    let transfer = float_of_int len *. Cost_model.cpu_cycles_per_word t.cost in
    t.counters.cycles <- t.counters.cycles +. transfer +. t.cost.dma_wait_cycles;
    t.counters.dma_words_received <- t.counters.dma_words_received +. float_of_int len;
    m_words_received len;
    Metrics.observe "sim.dma_recv_len_words" (float_of_int len);
    let data = t.dev.Accel_device.drain len in
    Trace.end_span t.tracer;
    data

let reset_device t =
  t.dev.Accel_device.reset_device ();
  t.high_water <- 0;
  t.ready_at <- 0.0;
  t.pending_send <- None;
  t.pending_recv <- None;
  t.send_done_at <- 0.0
