(** Deterministic discrete-event timeline for asynchronous DMA and
    accelerator activity.

    The simulator's blocking paths charge every cycle to the single
    serial counter in {!Perf_counters}; this module adds the parallel
    half of the story. Each hardware resource that can make progress
    concurrently with the host CPU — a DMA channel, an accelerator
    device — is an {e agent} with its own clock ([busy_until]).
    Asynchronous operations [schedule] work on an agent: the work
    starts no earlier than both the requested time and the agent's
    previous completion (agents are serial internally), and the
    returned finish time is what a later [accel.wait] synchronises the
    host against.

    The reported task-clock becomes the {e makespan}: the maximum over
    the host's serial counter and every agent's [busy_until]. When no
    asynchronous operation is issued the timeline stays empty and the
    makespan degenerates to the serial counter, so blocking runs are
    bit-for-bit identical to the pre-timeline simulator.

    Determinism: scheduling order is program order. Every event gets a
    monotone sequence number at [schedule] time, and {!events} sorts by
    [(start, seq)] — ties on start time are broken by issue order, so
    two runs of the same program produce byte-identical event lists. *)

type agent

type event = {
  ev_seq : int;  (** issue order; the tie-breaker *)
  ev_agent : string;
  ev_label : string;
  ev_start : float;  (** CPU cycles *)
  ev_finish : float;
}

type t

val create : unit -> t

val add_agent : t -> name:string -> agent
(** Register a named agent with an idle clock. Agent names are
    display/trace identities; they need not be unique, but the
    simulator uses one agent per DMA channel and per device. *)

val agent_name : agent -> string

val schedule :
  t -> agent -> not_before:float -> duration:float -> label:string -> float
(** Book [duration] cycles of work on the agent, starting at
    [max not_before (busy_until agent)]. Advances the agent's clock and
    logs an event; returns the finish time. *)

val busy_until : agent -> float
val makespan : t -> float
(** Latest completion over all agents; [0.] when nothing was scheduled. *)

val events : t -> event list
(** All scheduled events, sorted by [(ev_start, ev_seq)]. *)

val reset : t -> unit
(** Clear the event log and rewind every agent's clock to 0 (agents
    stay registered) — called from [Soc.reset_run_state]. *)
