(** Deterministic discrete-event timeline for asynchronous DMA and
    accelerator activity.

    The simulator's blocking paths charge every cycle to the single
    serial counter in {!Perf_counters}; this module adds the parallel
    half of the story. Each hardware resource that can make progress
    concurrently with the host CPU — a DMA channel, an accelerator
    device — is an {e agent} with its own clock ([busy_until]).
    Asynchronous operations [schedule] work on an agent: the work
    starts no earlier than both the requested time and the agent's
    previous completion (agents are serial internally), and the
    returned finish time is what a later [accel.wait] synchronises the
    host against.

    The reported task-clock becomes the {e makespan}: the maximum over
    the host's serial counter and every agent's [busy_until]. When no
    asynchronous operation is issued the timeline stays empty and the
    makespan degenerates to the serial counter, so blocking runs are
    bit-for-bit identical to the pre-timeline simulator.

    Besides scheduled agent work the timeline records {e marks}:
    host-clock annotations ([mark]) that name what an interval of the
    {e serial} counter was spent on (a PIO transfer, a stall waiting
    for a token, a status-register check). Marks never touch any
    agent's clock — the makespan, and therefore every counter, is
    unaffected — they only feed the critical-path analysis
    ({!Critpath}) with the host half of the event DAG.

    Dependency edges: both [schedule] and [mark] accept [?dep], the
    sequence number of an earlier event this one waits on (a token
    send's transfer for the device compute, a transfer for the host
    stall that waits on it). Together with per-agent program order and
    the host marks this makes the event DAG explicit enough for
    {!Critpath.analyze} to walk a contiguous critical path.

    Determinism: scheduling order is program order. Every event gets a
    monotone sequence number at [schedule]/[mark] time, and {!events}
    sorts by [(start, seq)] — ties on start time are broken by issue
    order, so two runs of the same program produce byte-identical
    event lists. *)

type agent

type event = {
  ev_seq : int;  (** issue order; the tie-breaker *)
  ev_agent : string;
  ev_label : string;
  ev_start : float;  (** CPU cycles *)
  ev_finish : float;
  ev_not_before : float;
      (** the requested earliest start ([schedule]'s [not_before];
          [ev_start] for marks). [ev_start > ev_not_before] means the
          agent's own serialisation, not the dependency, bound the
          start. *)
  ev_dep : int option;  (** [ev_seq] of the event this one waits on *)
  ev_mark : bool;  (** host-clock annotation, not agent work *)
}

type t

val create : unit -> t

val add_agent : t -> name:string -> agent
(** Register a named agent with an idle clock. Agent names are
    display/trace identities; they need not be unique, but the
    simulator uses one agent per DMA channel and per device. *)

val agent_name : agent -> string

val schedule :
  t ->
  agent ->
  ?dep:int ->
  not_before:float ->
  duration:float ->
  label:string ->
  unit ->
  float
(** Book [duration] cycles of work on the agent, starting at
    [max not_before (busy_until agent)]. Advances the agent's clock and
    logs an event; returns the finish time. [dep] names the upstream
    event whose completion [not_before] encodes, when there is one. *)

val mark :
  t ->
  ?dep:int ->
  agent:string ->
  start:float ->
  finish:float ->
  label:string ->
  unit ->
  unit
(** Record a host-clock annotation covering [[start, finish]] of the
    serial counter. No agent clock moves and the makespan is
    unchanged — blocking runs stay bit-identical. [agent] is a display
    identity (the DMA engine passes ["host"]). *)

val last_seq : t -> int
(** Sequence number of the most recently recorded event ([-1] when the
    log is empty) — how the DMA engine wires [dep] edges to events it
    just scheduled. *)

val busy_until : agent -> float
val makespan : t -> float
(** Latest completion over all agents; [0.] when nothing was scheduled.
    Marks do not count. *)

val events : t -> event list
(** All scheduled events and marks, sorted by [(ev_start, ev_seq)]. *)

val reset : t -> unit
(** Clear the event log and rewind every agent's clock to 0 (agents
    stay registered) — called from [Soc.reset_run_state]. *)
