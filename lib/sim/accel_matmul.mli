(** Functional + timing models of the tile-based MatMul accelerators of
    Table I.

    All versions compute [C(tM,tN) += A(tM,tK) * B(tK,tN)] over f32
    tiles held in internal buffers; they differ in which micro-ISA
    instructions they accept, and therefore in the data reuse a driver
    can exploit:

    - {!V1}: one fused [sAsBcCrC] instruction; nothing stationary.
    - {!V2}: separate A/B loads and a fused compute+drain; an input can
      stay stationary.
    - {!V3}: split compute and drain; inputs or the output can be
      stationary.
    - {!V4}: as V3, plus runtime-configurable (possibly non-square)
      tile sizes in multiples of the base [size], bounded by the
      per-operand buffer capacity.

    Compute throughput follows Table I ({!ops_per_cycle_for_size}). *)

type version = V1 | V2 | V3 | V4

val version_of_string : string -> version option
val version_to_string : version -> string

val ops_per_cycle_for_size : int -> float
(** Table I: size 4 -> 10, 8 -> 60, 16 -> 112 OPs/cycle. Other sizes
    interpolate quadratically from the 16-lane design point. *)

val buffer_capacity_elems : version -> size:int -> int
(** Per-operand internal buffer capacity in f32 elements. Fixed-size
    versions hold exactly one [size x size] tile; V4 has 4096 elements
    per operand (enough for, e.g., a 32 x 64 tile). *)

val create : ?tracer:Trace.t -> version:version -> size:int -> unit -> Accel_device.t
(** Build a device. [size] is the supported tile edge (the divisibility
    granularity for V4). [tracer] (default {!Trace.noop}) receives an
    instant event on {!Trace.accel_track} per tile computation, carrying
    the tile dims and accelerator cycles. *)
