let reset = 0xFF

let mm_fused = 0x21
let mm_load_a = 0x22
let mm_load_b = 0x23
let mm_drain = 0x24
let mm_load_b_compute_drain = 0x25
let mm_compute_drain = 0x2D
let mm_compute = 0xF0
let mm_set_tm = 0x10
let mm_set_tn = 0x11
let mm_set_tk = 0x12

let cv_set_fhw = 0x20
let cv_set_ic = 0x16
let cv_set_stride = 0x17
let cv_load_w = 0x01
let cv_patch = 0x46
let cv_patch_resident = 0x47
let cv_drain = 0x08
let cv_accept = 0x09

let name code =
  if code = reset then "reset"
  else if code = mm_fused then "mm_fused"
  else if code = mm_load_a then "mm_load_a"
  else if code = mm_load_b then "mm_load_b"
  else if code = mm_drain then "mm_drain"
  else if code = mm_load_b_compute_drain then "mm_load_b_compute_drain"
  else if code = mm_compute_drain then "mm_compute_drain"
  else if code = mm_compute then "mm_compute"
  else if code = mm_set_tm then "mm_set_tm"
  else if code = mm_set_tn then "mm_set_tn"
  else if code = mm_set_tk then "mm_set_tk"
  else if code = cv_set_fhw then "cv_set_fhw"
  else if code = cv_set_ic then "cv_set_ic"
  else if code = cv_set_stride then "cv_set_stride"
  else if code = cv_load_w then "cv_load_w"
  else if code = cv_patch then "cv_patch"
  else if code = cv_patch_resident then "cv_patch_resident"
  else if code = cv_drain then "cv_drain"
  else if code = cv_accept then "cv_accept"
  else Printf.sprintf "unknown(0x%X)" code
