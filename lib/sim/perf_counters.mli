(** Performance counters, the simulator's analogue of the Linux [perf]
    events the paper reports (task-clock, cache-references,
    branch-instructions; Sec. IV-B, Fig. 12).

    Counters are floats so that amortised costs (e.g. one branch per
    four vector chunks) can be accumulated exactly. Definitions:

    - [cycles]: CPU clock cycles of the host, including time spent
      blocked on DMA transfers and accelerator completion.
    - [cache_references]: lookups made anywhere in the cache subsystem
      (L1 accesses plus the L2 accesses caused by L1 misses). A scalar
      load/store counts one L1 access; a 16-byte vectorised chunk counts
      one (the paper's Sec. IV-B NEON-register argument).
    - [branches]: executed branch instructions (loop back-edges,
      per-element copy-loop branches, call/return pairs).
    - [instructions]: rough retired-instruction count (for IPC-style
      sanity checks only). *)

type t = {
  mutable cycles : float;
  mutable instructions : float;
  mutable branches : float;
  mutable l1_accesses : float;
  mutable l1_misses : float;
  mutable l2_accesses : float;
  mutable l2_misses : float;
  mutable dma_transactions : float;
  mutable dma_words_sent : float;
  mutable dma_words_received : float;
  mutable accel_busy_cycles : float;  (** in accelerator clock cycles *)
  mutable flops : float;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val field_names : string list
(** Counter names in declaration order — the canonical field list that
    {!fields}, {!of_fields}, {!to_json} and the field-wise combinators
    are all derived from, so a newly added counter cannot silently be
    missing from any of them. *)

val fields : t -> (string * float) list
(** [(name, value)] pairs in {!field_names} order. This is what trace
    span snapshots record ({!Trace.enable}'s [snapshot]). *)

val of_fields : (string * float) list -> t
(** Inverse of {!fields}; absent fields default to 0. Raises
    [Invalid_argument] on an unknown field name. *)

val to_json : t -> Json.t
(** An object with one number per counter (used by the trace
    exporters). [of_json (to_json c)] equals [c]. *)

val of_json_result : Json.t -> (t, string) result
(** Inverse of {!to_json}. Malformed input — a non-object, an unknown
    counter name, a non-numeric value — yields [Error] with a
    field-qualified message ("perf_counters.cycles: ..."). *)

val of_json : Json.t -> t
(** As {!of_json_result}; raises [Invalid_argument] with the same
    structured message on malformed input. *)

val cache_references : t -> float
(** [l1_accesses + l2_accesses]. *)

val task_clock_ms : t -> cpu_freq_mhz:float -> float
(** Host cycles converted to milliseconds. *)

val add : t -> t -> t
(** Field-wise sum (for aggregating runs). *)

val diff : t -> t -> t
(** Field-wise [a - b] (counter deltas between snapshots). *)

val scale : t -> float -> t

val accumulate : t -> t -> unit
(** In-place field-wise [target += delta] (used by sampled
    simulation to extrapolate measured deltas). *)

val to_string : t -> string
(** One-line summary for logs. *)
