type version = V1 | V2 | V3 | V4

let version_of_string = function
  | "v1" -> Some V1
  | "v2" -> Some V2
  | "v3" -> Some V3
  | "v4" -> Some V4
  | _ -> None

let version_to_string = function V1 -> "v1" | V2 -> "v2" | V3 -> "v3" | V4 -> "v4"

(* Table I design points; other sizes scale like the MAC array area
   (quadratic in the edge) anchored at the 16-lane design. *)
let ops_per_cycle_for_size size =
  match size with
  | 4 -> 10.0
  | 8 -> 60.0
  | 16 -> 112.0
  | s -> 112.0 *. float_of_int (s * s) /. float_of_int (16 * 16)

let v4_capacity = 4096

let buffer_capacity_elems version ~size =
  match version with V1 | V2 | V3 -> size * size | V4 -> v4_capacity

type state = {
  version : version;
  size : int;
  capacity : int;
  mutable tm : int;
  mutable tn : int;
  mutable tk : int;
  a : float array;
  b : float array;
  c : float array;
  out : float Queue.t;
}

let fail_op st code =
  failwith
    (Printf.sprintf "%s_%d accelerator: unsupported instruction %s"
       (version_to_string st.version) st.size (Isa.name code))

let check_dims st =
  if st.tm * st.tk > st.capacity || st.tk * st.tn > st.capacity
     || st.tm * st.tn > st.capacity
  then
    failwith
      (Printf.sprintf "%s_%d accelerator: tile %dx%dx%d exceeds buffer capacity %d"
         (version_to_string st.version) st.size st.tm st.tn st.tk st.capacity);
  let ok d = d > 0 && d mod st.size = 0 in
  if not (ok st.tm && ok st.tn && ok st.tk) then
    failwith
      (Printf.sprintf "%s_%d accelerator: tile dims %dx%dx%d must be positive multiples of %d"
         (version_to_string st.version) st.size st.tm st.tn st.tk st.size)

let clear_c st = Array.fill st.c 0 (st.tm * st.tn) 0.0

let reset st =
  st.tm <- st.size;
  st.tn <- st.size;
  st.tk <- st.size;
  Array.fill st.a 0 (Array.length st.a) 0.0;
  Array.fill st.b 0 (Array.length st.b) 0.0;
  Array.fill st.c 0 (Array.length st.c) 0.0;
  Queue.clear st.out

let note_compute tracer st cycles =
  Trace.instant tracer ~cat:"accel" ~track:Trace.accel_track
    ~args:
      [
        ("tm", Trace.Int st.tm);
        ("tn", Trace.Int st.tn);
        ("tk", Trace.Int st.tk);
        ("accel_cycles", Trace.Num cycles);
      ]
    "mm_compute"

(* One tile MAC pass: C += A x B. Returns accelerator cycles. *)
let compute st =
  for m = 0 to st.tm - 1 do
    for n = 0 to st.tn - 1 do
      let acc = ref st.c.((m * st.tn) + n) in
      for k = 0 to st.tk - 1 do
        acc := !acc +. (st.a.((m * st.tk) + k) *. st.b.((k * st.tn) + n))
      done;
      st.c.((m * st.tn) + n) <- !acc
    done
  done;
  2.0 *. float_of_int (st.tm * st.tn * st.tk) /. ops_per_cycle_for_size st.size

let drain_c st =
  for i = 0 to (st.tm * st.tn) - 1 do
    Queue.push st.c.(i) st.out
  done;
  clear_c st

let create ?(tracer = Trace.noop) ~version ~size () =
  let capacity = buffer_capacity_elems version ~size in
  let st =
    {
      version;
      size;
      capacity;
      tm = size;
      tn = size;
      tk = size;
      a = Array.make capacity 0.0;
      b = Array.make capacity 0.0;
      c = Array.make capacity 0.0;
      out = Queue.create ();
    }
  in
  let consume words =
    let cycles = ref 0.0 in
    let run_compute () =
      let c = compute st in
      note_compute tracer st c;
      cycles := !cycles +. c
    in
    let pos = ref 0 in
    let next () =
      if !pos >= Array.length words then
        failwith
          (Printf.sprintf "%s_%d accelerator: truncated transaction"
             (version_to_string version) size);
      let w = words.(!pos) in
      incr pos;
      w
    in
    let read_payload dst n =
      check_dims st;
      for i = 0 to n - 1 do
        dst.(i) <- Axi_word.expect_data (next ())
      done
    in
    let read_dim () = Axi_word.expect_inst (next ()) in
    while !pos < Array.length words do
      let code = Axi_word.expect_inst (next ()) in
      if code = Isa.reset then reset st
      else if code = Isa.mm_set_tm && version = V4 then begin
        st.tm <- read_dim ();
        check_dims st
      end
      else if code = Isa.mm_set_tn && version = V4 then begin
        st.tn <- read_dim ();
        check_dims st
      end
      else if code = Isa.mm_set_tk && version = V4 then begin
        st.tk <- read_dim ();
        check_dims st
      end
      else if code = Isa.mm_fused && version = V1 then begin
        read_payload st.a (st.tm * st.tk);
        read_payload st.b (st.tk * st.tn);
        run_compute ();
        drain_c st
      end
      else if code = Isa.mm_load_a && version <> V1 then
        read_payload st.a (st.tm * st.tk)
      else if code = Isa.mm_load_b && version <> V1 then
        read_payload st.b (st.tk * st.tn)
      else if code = Isa.mm_load_b_compute_drain && version = V2 then begin
        read_payload st.b (st.tk * st.tn);
        run_compute ();
        drain_c st
      end
      else if code = Isa.mm_compute_drain && version = V2 then begin
        run_compute ();
        drain_c st
      end
      else if code = Isa.mm_compute && (version = V3 || version = V4) then
        run_compute ()
      else if code = Isa.mm_drain && (version = V3 || version = V4) then drain_c st
      else fail_op st code
    done;
    !cycles
  in
  let drain n =
    if Queue.length st.out < n then
      failwith
        (Printf.sprintf "%s_%d accelerator: host requested %d output words, %d available"
           (version_to_string version) size n (Queue.length st.out));
    Array.init n (fun _ -> Queue.pop st.out)
  in
  {
    Accel_device.device_name = Printf.sprintf "%s_%d" (version_to_string version) size;
    consume;
    drain;
    available = (fun () -> Queue.length st.out);
    reset_device = (fun () -> reset st);
    (* every tile load overwrites the previous tile by construction, so
       there is no host-managed residency to model *)
    regions = [];
  }
