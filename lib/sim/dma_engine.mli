(** A DMA engine bridging the CPU and one accelerator over AXI-Stream
    (paper Fig. 1 and Sec. III-A).

    The engine owns an input and an output memory-mapped region
    (uncached, as the paper's [mmap]ed buffers). The host stages words
    into the input region, then [start_send]/[wait_send] stream a range
    to the device; [start_recv]/[wait_recv] collect device output into
    the output region. Timing:

    - starting a transfer costs {!Cost_model.t.dma_program_cycles};
    - each waited transfer costs one word per
      [bus_words_per_cpu_cycle] plus [dma_wait_cycles];
    - device compute overlaps host execution: its completion time is
      tracked and [wait_recv] stalls the host clock until then. *)

type t

type token = int
(** Handle to a non-blocking transfer (see {!start_send_token}). *)

val create :
  cost:Cost_model.t ->
  counters:Perf_counters.t ->
  ?tracer:Trace.t ->
  ?timeline:Timeline.t ->
  ?dma_id:int ->
  device:Accel_device.t ->
  in_capacity_words:int ->
  out_capacity_words:int ->
  unit ->
  t
(** [tracer] (default {!Trace.noop}) receives [dma_send]/[dma_recv]
    spans for every transaction, an [accel_wait] span for host stalls on
    device completion, and accelerator busy intervals on
    {!Trace.accel_track}. [timeline] (default: a private one) carries
    the engine's two asynchronous agents — the DMA channel and the
    device — whose busy windows feed the makespan; [dma_id] names them
    and selects the per-channel trace tracks. *)

val device : t -> Accel_device.t
val in_capacity_words : t -> int

val stage : t -> offset:int -> Axi_word.t -> unit
(** Write one word into the input region at a word offset. No host cost
    is charged here — the runtime library accounts for the host-side
    copy according to the copy strategy in use. Raises [Failure] on
    overflow of the input region. *)

val staged_high_water : t -> int
(** Highest staged offset + 1 since the last send (the batch length). *)

val note_skipped : t -> words:int -> what:string -> unit
(** Mark a transfer the residency planner elided: records an instant on
    the DMA channel's trace track and a [sim.dma_words_skipped] metric.
    No words move and no performance counters are charged — a skipped
    transfer is genuinely absent from the timeline, this is only the
    explanation marker. *)

val start_send : t -> offset:int -> len_words:int -> unit
(** Program an input transfer of [len_words] starting at word [offset].
    The device consumes the words when the transfer completes (at
    [wait_send] time in wall-clock terms, but modelled here). *)

val wait_send : t -> unit
(** Block until the programmed transfer completes. *)

val send_staged : t -> unit
(** Convenience: [start_send ~offset:0 ~len_words:(staged_high_water)]
    followed by {!wait_send}, then reset the staging high-water mark.
    This is the "flush" the accel dialect's batching semantics use. *)

val send_staged_async : t -> unit
(** Double-buffered flush: program the transfer and return immediately —
    the stream drains in the background while the host prepares the
    next tile in the other half of the (ping-pong) input region. If a
    previous asynchronous transfer is still in flight, the host first
    stalls until it completes (there are only two buffer halves). *)

val sync_sends : t -> unit
(** Stall the host until any in-flight asynchronous send completes. *)

val start_recv : t -> len_words:int -> unit
val wait_recv : t -> float array
(** Stall until the device has produced the requested words, stream
    them into the output region, and return them. *)

val reset_device : t -> unit

(** {1 Non-blocking (token) transfers}

    The asynchronous halves of the blocking pairs above. The host pays
    only the programming cost at [start_*]; the transfer itself (and
    any accelerator compute it triggers) runs on the engine's
    {!Timeline} agents, concurrently with subsequent host work. A later
    {!wait_token} synchronises: it stalls the host clock up to the
    transfer's completion (full [dma_wait_cycles] poll) or, when the
    transfer already drained, pays only a cheap status-register check.
    DMA word and transaction counters are charged at [start_*] time, so
    totals match the blocking path exactly. *)

val start_send_token : t -> token
(** Flush everything staged since the last flush — the batch is the
    [\[lowest, highest\)] staged range, so ping/pong codegen can stage
    alternate halves — as one non-blocking transfer. Raises [Failure]
    if the batch overlaps a send still in flight (a double-buffering
    protocol violation). *)

val start_recv_token : t -> len_words:int -> token
(** Program a non-blocking receive of the oldest undrained batch; the
    transfer starts when that batch's compute completes. *)

val wait_token : t -> token -> float array
(** Synchronise the host with a transfer. Returns the received words
    for recv tokens ([[||]] for sends). Raises [Failure] on an unknown
    or already-waited token. *)

val outstanding_tokens : t -> token list
(** Tokens not yet waited (ascending) — the interpreter's end-of-run
    leak check. *)
