(** Functional + timing model of the Conv2D accelerator (paper
    Sec. IV-D).

    The engine holds one weight slice W(oc, :, :, :) stationary and
    computes one output element per input patch: the host configures
    the filter edge (fHW) and input-channel count (iC), loads
    [iC * fHW * fHW] weight elements, then streams input patches of the
    same length; each patch instruction queues one output element
    (the inner product). The [cv_drain] instruction releases queued
    elements to the output stream. *)

val default_ops_per_cycle : float
(** MAC-array throughput (64 OPs/cycle — comparable to the v3_16
    engine, as both come from the same HLS library). *)

val buffer_capacity_elems : int
(** Weight/patch buffer capacity (8192 f32 elements: enough for every
    ResNet18 layer, e.g. iC=512 with a 3x3 filter needs 4608). *)

val create : ?ops_per_cycle:float -> ?tracer:Trace.t -> unit -> Accel_device.t
(** [tracer] (default {!Trace.noop}) receives an instant event on
    {!Trace.accel_track} per streamed patch (inner product). *)
