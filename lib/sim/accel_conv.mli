(** Functional + timing model of the Conv2D accelerator (paper
    Sec. IV-D), extended with the residency ISA the whole-model graph
    scheduler targets.

    The engine holds one weight slice W(oc, :, :, :) stationary and
    computes one output element per input patch: the host configures
    the filter edge (fHW) and input-channel count (iC), loads
    [iC * fHW * fHW] weight elements, then streams input patches of the
    same length; each patch instruction queues one output element
    (the inner product). The [cv_drain] instruction releases queued
    elements to the output stream.

    Chaining extensions: [cv_accept c h w] moves exactly [c*h*w]
    pending (undrained) output elements into a resident activation
    image, and [cv_patch_resident y x] assembles a patch from that
    image (honouring [cv_set_stride]) instead of the stream — a
    consumer layer on the same device reads its producer's output
    without a host round trip. Patch element order is identical on
    both paths, so chained outputs are bit-identical to streamed
    ones.

    The device exposes two {!Accel_device.region}s — ["weights"]
    (capacity [capacity_elems]) and ["activations"] (capacity
    [act_capacity]) — the host-visible residency contract drivers
    update as they issue loads and accepts. *)

val default_ops_per_cycle : float
(** MAC-array throughput (64 OPs/cycle — comparable to the v3_16
    engine, as both come from the same HLS library). *)

val buffer_capacity_elems : int
(** Default weight/patch buffer capacity (8192 f32 elements: enough
    for every ResNet18 layer, e.g. iC=512 with a 3x3 filter needs
    4608). *)

val act_capacity_elems : int
(** Default resident activation image capacity (16384 f32 elements, a
    64 KiB feature-map SRAM). *)

val create :
  ?ops_per_cycle:float ->
  ?tracer:Trace.t ->
  ?capacity_elems:int ->
  ?act_capacity:int ->
  unit ->
  Accel_device.t
(** [tracer] (default {!Trace.noop}) receives an instant event on
    {!Trace.accel_track} per computed patch (inner product), tagged
    with its source (["stream"] or ["resident"]). [capacity_elems] /
    [act_capacity] override the buffer sizes (the residency tests pin
    capacity-exactly-full behaviour on small buffers). *)
