type t = {
  memory : Sim_memory.t;
  cache : Cache.t;
  counters : Perf_counters.t;
  cost : Cost_model.t;
  tracer : Trace.t;
  timeline : Timeline.t;
  mutable engines : (int * Dma_engine.t) list;
  mutable host_serial : float option;
}

let create ?(cost = Cost_model.default)
    ?(cache_geometries = [ Cache.cortex_a9_l1; Cache.cortex_a9_l2 ])
    ?(tracer = Trace.create ()) () =
  {
    memory = Sim_memory.create ();
    cache = Cache.create cache_geometries;
    counters = Perf_counters.create ();
    cost;
    tracer;
    timeline = Timeline.create ();
    engines = [];
    host_serial = None;
  }

let enable_tracing t =
  Trace.enable t.tracer
    ~clock:(fun () -> t.counters.Perf_counters.cycles)
    ~snapshot:(fun () -> Perf_counters.fields t.counters);
  t.tracer

let attach_engine t ~dma_id ~device ~in_capacity_words ~out_capacity_words =
  let engine =
    Dma_engine.create ~cost:t.cost ~counters:t.counters ~tracer:t.tracer
      ~timeline:t.timeline ~dma_id ~device ~in_capacity_words ~out_capacity_words ()
  in
  t.engines <- (dma_id, engine) :: List.remove_assoc dma_id t.engines;
  engine

let engine t dma_id =
  match List.assoc_opt dma_id t.engines with
  | Some e -> e
  | None -> failwith (Printf.sprintf "Soc: no DMA engine with id %d" dma_id)

let reset_run_state t =
  Perf_counters.reset t.counters;
  Cache.flush t.cache;
  (* The trace clock restarts from 0 with the counters; events recorded
     before the reset would break timestamp monotonicity. *)
  Trace.clear t.tracer;
  Timeline.reset t.timeline;
  t.host_serial <- None;
  List.iter (fun (_, e) -> Dma_engine.reset_device e) t.engines

let task_clock_cycles t = Float.max t.counters.Perf_counters.cycles (Timeline.makespan t.timeline)

(* Fold asynchronous agents' completion into the serial counter so that
   everything downstream of a measured run (perf reports, bench
   artifacts, the fuzzer's invariants) reports the makespan. A blocking
   run schedules nothing on the timeline, so this is the identity
   there — bit-for-bit. The pre-absorb serial counter — how long the
   host itself was busy — is what the critical-path doctor's
   perfect-overlap floor needs, so remember it before overwriting. *)
let absorb_makespan t =
  if t.host_serial = None then
    t.host_serial <- Some t.counters.Perf_counters.cycles;
  t.counters.Perf_counters.cycles <- task_clock_cycles t

let host_serial_cycles t =
  match t.host_serial with Some c -> c | None -> t.counters.Perf_counters.cycles

(* The timeline's neutral view for {!Critpath.analyze}: every scheduled
   agent event and host mark becomes an interval, labelled with its
   attribution category. The label vocabulary here is exactly what
   {!Dma_engine} records. *)
let critpath_interval (e : Timeline.event) =
  let open Critpath in
  let category, jump, offload =
    if e.Timeline.ev_mark then
      match e.Timeline.ev_label with
      | "program_send" -> (Dma_send, false, false)
      | "program_recv" -> (Dma_recv, false, false)
      | "host_send" -> (Dma_send, false, true)
      | "host_recv" -> (Dma_recv, false, true)
      | "accel_stall" -> (Accel_compute, false, true)
      | "send_sync" | "dma_poll" -> (Wait_stall, false, true)
      | "token_stall" -> (Wait_stall, true, true)
      | "status_check" -> (Status_check, false, true)
      | _ -> (Host_compute, false, false)
    else
      match e.Timeline.ev_label with
      | "send" -> (Dma_send, false, false)
      | "recv" -> (Dma_recv, false, false)
      | "compute" -> (Accel_compute, false, false)
      | _ -> (Host_compute, false, false)
  in
  {
    iv_seq = e.Timeline.ev_seq;
    iv_agent = e.Timeline.ev_agent;
    iv_label = e.Timeline.ev_label;
    iv_start = e.Timeline.ev_start;
    iv_finish = e.Timeline.ev_finish;
    iv_not_before = e.Timeline.ev_not_before;
    iv_dep = e.Timeline.ev_dep;
    iv_mark = e.Timeline.ev_mark;
    iv_jump = jump;
    iv_category = category;
    iv_offload = offload;
  }

let critpath_input t =
  let c = t.counters in
  {
    Critpath.in_makespan = task_clock_cycles t;
    in_host_end = host_serial_cycles t;
    in_dma_transfer =
      (c.Perf_counters.dma_words_sent +. c.Perf_counters.dma_words_received)
      *. Cost_model.cpu_cycles_per_word t.cost;
    in_accel_busy = Cost_model.accel_to_cpu_cycles t.cost c.Perf_counters.accel_busy_cycles;
    in_intervals = List.map critpath_interval (Timeline.events t.timeline);
  }

let engine_track_names t =
  List.concat_map
    (fun (id, e) ->
      let dev = (Dma_engine.device e).Accel_device.device_name in
      [
        (Trace.dma_channel_track id, Printf.sprintf "dma%d channel" id);
        (Trace.accel_device_track id, Printf.sprintf "%s (dma%d)" dev id);
      ])
    (List.sort compare t.engines)

(* Charge one cache access at the given byte address. *)
let charge_access t addr =
  let result = Cache.access t.cache addr in
  let levels = List.length (Cache.geometries t.cache) in
  let c = t.counters in
  c.l1_accesses <- c.l1_accesses +. 1.0;
  if result.Cache.level_hit >= 2 then begin
    c.l1_misses <- c.l1_misses +. 1.0;
    if levels >= 2 then c.l2_accesses <- c.l2_accesses +. 1.0
  end;
  if result.Cache.level_hit >= 3 then c.l2_misses <- c.l2_misses +. 1.0;
  let cycles =
    t.cost.l1_hit_cycles
    +. (if result.Cache.level_hit >= 2 then t.cost.l2_hit_cycles else 0.0)
    +. if result.Cache.level_hit >= 3 then t.cost.dram_cycles else 0.0
  in
  c.cycles <- c.cycles +. cycles;
  c.instructions <- c.instructions +. 1.0

let cached_read t buf i =
  charge_access t (Sim_memory.addr_of buf i);
  Sim_memory.get buf i

let cached_write t buf i v =
  charge_access t (Sim_memory.addr_of buf i);
  Sim_memory.set buf i v

let vector_range t buf i n =
  if n > 0 then begin
    let chunk_elems = t.cost.vector_chunk_bytes / 4 in
    let chunks = Util.ceil_div n chunk_elems in
    for c = 0 to chunks - 1 do
      charge_access t (Sim_memory.addr_of buf (i + (c * chunk_elems)))
    done;
    (* one vector op per chunk beyond the access cost already charged *)
    t.counters.instructions <- t.counters.instructions +. float_of_int chunks
  end

let vector_read_range = vector_range
let vector_write_range = vector_range

let memref_scalar_access t buf i =
  let c = t.counters in
  c.l1_accesses <- c.l1_accesses +. 2.0;
  c.cycles <- c.cycles +. (2.0 *. t.cost.l1_hit_cycles) +. t.cost.alu_cycles;
  c.instructions <- c.instructions +. 3.0;
  charge_access t (Sim_memory.addr_of buf i);
  Sim_memory.get buf i

let charge_l1_hits t n =
  let c = t.counters in
  c.l1_accesses <- c.l1_accesses +. float_of_int n;
  c.cycles <- c.cycles +. (float_of_int n *. t.cost.l1_hit_cycles);
  c.instructions <- c.instructions +. float_of_int n

let alu t n =
  t.counters.cycles <- t.counters.cycles +. (float_of_int n *. t.cost.alu_cycles);
  t.counters.instructions <- t.counters.instructions +. float_of_int n

let fpu t n =
  t.counters.cycles <- t.counters.cycles +. (float_of_int n *. t.cost.fpu_cycles);
  t.counters.instructions <- t.counters.instructions +. float_of_int n;
  t.counters.flops <- t.counters.flops +. float_of_int n

let branch t n =
  t.counters.cycles <- t.counters.cycles +. (float_of_int n *. t.cost.branch_cycles);
  t.counters.branches <- t.counters.branches +. float_of_int n;
  t.counters.instructions <- t.counters.instructions +. float_of_int n

let loop_iteration t =
  t.counters.cycles <- t.counters.cycles +. t.cost.loop_overhead_cycles;
  t.counters.instructions <- t.counters.instructions +. 2.0;
  branch t 1

let call_overhead t =
  t.counters.cycles <- t.counters.cycles +. 4.0;
  t.counters.instructions <- t.counters.instructions +. 2.0;
  branch t 2

let uncached_store_words t n =
  t.counters.cycles <- t.counters.cycles +. (float_of_int n *. t.cost.uncached_store_cycles);
  t.counters.instructions <- t.counters.instructions +. float_of_int n

let uncached_load_words t n =
  t.counters.cycles <- t.counters.cycles +. (float_of_int n *. t.cost.uncached_load_cycles);
  t.counters.instructions <- t.counters.instructions +. float_of_int n

let now_ms t = Perf_counters.task_clock_ms t.counters ~cpu_freq_mhz:t.cost.cpu_freq_mhz
