(* Residency regions: the host-visible contract of what a device's
   on-chip buffers currently hold. See the .mli for the model. *)

type entry = {
  en_tag : string;
  en_words : int;
  en_off : int;
  en_seq : int;
}

type region = {
  rg_name : string;
  rg_capacity_words : int;
  mutable rg_entries : entry list;
  mutable rg_next_off : int;
  mutable rg_seq : int;
  mutable rg_hits : int;
  mutable rg_misses : int;
  mutable rg_evictions : int;
}

let make_region ~name ~capacity_words =
  if capacity_words <= 0 then
    invalid_arg "Accel_device.make_region: capacity must be positive";
  {
    rg_name = name;
    rg_capacity_words = capacity_words;
    rg_entries = [];
    rg_next_off = 0;
    rg_seq = 0;
    rg_hits = 0;
    rg_misses = 0;
    rg_evictions = 0;
  }

let region_used r = List.fold_left (fun acc e -> acc + e.en_words) 0 r.rg_entries

let region_tags r =
  List.map (fun e -> e.en_tag)
    (List.sort (fun a b -> compare a.en_seq b.en_seq) r.rg_entries)

let region_lookup r ~tag =
  match List.find_opt (fun e -> e.en_tag = tag) r.rg_entries with
  | Some e ->
    r.rg_hits <- r.rg_hits + 1;
    Some e.en_off
  | None ->
    r.rg_misses <- r.rg_misses + 1;
    None

let region_invalidate r ~tag =
  r.rg_entries <- List.filter (fun e -> e.en_tag <> tag) r.rg_entries

let region_clear r =
  r.rg_entries <- [];
  r.rg_next_off <- 0

let overlaps lo hi e = e.en_off < hi && e.en_off + e.en_words > lo

let region_install r ~tag ~words =
  if words <= 0 then Error (Printf.sprintf "%s: cannot install %d words" r.rg_name words)
  else if words > r.rg_capacity_words then
    Error
      (Printf.sprintf "%s: %s needs %d words, capacity is %d" r.rg_name tag words
         r.rg_capacity_words)
  else begin
    (* Installing a tag that is already resident overwrites it: the old
       copy is no longer valid (validity invalidation on overwrite). *)
    region_invalidate r ~tag;
    let off = if r.rg_next_off + words > r.rg_capacity_words then 0 else r.rg_next_off in
    let evicted, kept = List.partition (overlaps off (off + words)) r.rg_entries in
    (* Ring allocation evicts in installation order: entries overlap the
       claimed range oldest-offset-first, so the returned list is the
       deterministic eviction order the tests pin. *)
    let evicted = List.sort (fun a b -> compare a.en_seq b.en_seq) evicted in
    r.rg_evictions <- r.rg_evictions + List.length evicted;
    r.rg_seq <- r.rg_seq + 1;
    r.rg_entries <-
      kept @ [ { en_tag = tag; en_words = words; en_off = off; en_seq = r.rg_seq } ];
    r.rg_next_off <- off + words;
    Ok (off, List.map (fun e -> e.en_tag) evicted)
  end

(* Single-tenant buffers (the conv engine's weight slice and resident
   activation image): a new install displaces everything. *)
let region_replace r ~tag ~words =
  match
    if words > r.rg_capacity_words then
      Error
        (Printf.sprintf "%s: %s needs %d words, capacity is %d" r.rg_name tag words
           r.rg_capacity_words)
    else Ok ()
  with
  | Error _ as e -> e
  | Ok () ->
    let evicted = region_tags r in
    r.rg_evictions <- r.rg_evictions + List.length evicted;
    region_clear r;
    (match region_install r ~tag ~words with
    | Ok (off, _) -> Ok (off, evicted)
    | Error _ as e -> e)

type t = {
  device_name : string;
  consume : Axi_word.t array -> float;
  drain : int -> float array;
  available : unit -> int;
  reset_device : unit -> unit;
  regions : region list;
}

let find_region t name = List.find_opt (fun r -> r.rg_name = name) t.regions
