(** The simulated SoC (paper Fig. 1): host CPU with a cache hierarchy,
    main memory, and DMA engines attached to accelerator devices.

    Host drivers — hand-written baselines, the DMA runtime library, and
    the IR interpreter — execute against this module: every memory
    access, arithmetic operation and branch they model is charged here,
    accumulating the {!Perf_counters.t} that the benchmarks report. *)

type t = {
  memory : Sim_memory.t;
  cache : Cache.t;
  counters : Perf_counters.t;
  cost : Cost_model.t;
  tracer : Trace.t;  (** disabled unless {!enable_tracing} was called *)
  timeline : Timeline.t;
      (** per-agent clocks for asynchronous DMA/accelerator activity;
          empty (and cost-free) in blocking runs *)
  mutable engines : (int * Dma_engine.t) list;
  mutable host_serial : float option;
      (** the serial counter as it stood when {!absorb_makespan} first
          ran — the host's own busy time, before the makespan
          overwrote it. [None] until then. *)
}

val create :
  ?cost:Cost_model.t ->
  ?cache_geometries:Cache.geometry list ->
  ?tracer:Trace.t ->
  unit ->
  t
(** Defaults: {!Cost_model.default}, the Cortex-A9 L1+L2 geometry, and a
    fresh disabled tracer. *)

val enable_tracing : t -> Trace.t
(** Switch the SoC's tracer to a recording sink whose clock is the
    simulated cycle counter and whose span snapshots are
    {!Perf_counters.fields}, then return it. Instrumentation in the DMA
    engines, runtime library and interpreter starts recording
    immediately; counters are never affected either way. *)

val attach_engine :
  t ->
  dma_id:int ->
  device:Accel_device.t ->
  in_capacity_words:int ->
  out_capacity_words:int ->
  Dma_engine.t
(** Create and register a DMA engine. Replaces any engine with the same
    id. *)

val engine : t -> int -> Dma_engine.t
(** Raises [Failure] for an unknown id. *)

val reset_run_state : t -> unit
(** Reset counters, caches, recorded trace events, the async timeline
    and device state between measured runs (memory contents are
    preserved). *)

val task_clock_cycles : t -> float
(** The makespan: the serial host counter or the latest asynchronous
    agent completion, whichever is later. Equals [counters.cycles]
    exactly when no async transfer was issued. *)

val absorb_makespan : t -> unit
(** Set [counters.cycles] to {!task_clock_cycles} — called once at the
    end of a measured run so reported task-clocks are makespans. A
    no-op for blocking runs (empty timeline). The first call also
    captures [host_serial]. *)

val host_serial_cycles : t -> float
(** The host's own busy cycles: the captured pre-absorb counter, or the
    live counter when {!absorb_makespan} has not run yet. *)

val critpath_input : t -> Critpath.input
(** Snapshot the run's event DAG — timeline agent events, host marks,
    total DMA wire time and device busy time — in the neutral form
    {!Critpath.analyze} and {!Doctor.diagnose} consume. Call after the
    measured run (post-{!absorb_makespan}); the snapshot is read-only
    and does not disturb counters or timeline. *)

val engine_track_names : t -> (int * string) list
(** Chrome-trace [tid -> name] labels for each attached engine's DMA
    channel and accelerator tracks (for {!Chrome_trace.write_file}). *)

(** {1 Host event costing} *)

val cached_read : t -> Sim_memory.buffer -> int -> float
(** Scalar f32 load: one cache reference plus hit/miss cycles; returns
    the value. *)

val cached_write : t -> Sim_memory.buffer -> int -> float -> unit

val vector_read_range : t -> Sim_memory.buffer -> int -> int -> unit
(** Charge a vectorised (memcpy-style) read of [n] contiguous elements
    starting at an element index: one cache reference and ~1 cycle per
    {!Cost_model.t.vector_chunk_bytes} chunk, plus miss penalties. Does
    not return data (the caller moves data separately — functional and
    timing concerns are split). *)

val vector_write_range : t -> Sim_memory.buffer -> int -> int -> unit

val memref_scalar_access : t -> Sim_memory.buffer -> int -> float
(** A scalar element access through a memref descriptor, as the
    straightforward linalg-to-loops lowering performs it: two
    descriptor-field loads (assumed L1-resident), one address ALU op,
    and the cached data access. Returns the loaded value; pair with
    {!Sim_memory.set} for stores (same cost either direction). Used by
    both the IR interpreter and the native CPU reference so the two
    charge identically. *)

val charge_l1_hits : t -> int -> unit
(** [n] cache accesses that are assumed to hit L1 (e.g. the memref
    size/stride struct loads of the generic element-wise copy): counted
    as cache references and one cycle each, without touching cache
    state. *)

val alu : t -> int -> unit
(** [n] integer ALU operations. *)

val fpu : t -> int -> unit
val branch : t -> int -> unit
(** [n] executed branches. *)

val loop_iteration : t -> unit
(** Per-iteration loop overhead: compare+increment plus one counted
    branch. *)

val call_overhead : t -> unit
(** Function call + return (charged by the runtime library entry
    points). *)

val uncached_store_words : t -> int -> unit
(** Host stores into a DMA region ([n] 32-bit words). *)

val uncached_load_words : t -> int -> unit

val now_ms : t -> float
(** Elapsed simulated time in milliseconds. *)
