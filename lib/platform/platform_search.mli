(** Architecture search: explore the {e platform} half of the co-design
    space under an area budget.

    Where {!Tuner} fixes the SoC and searches host-code knobs (engine,
    flow, tiles, transfer options), this module fixes the per-kernel
    host code (the [Best] heuristic, via {!Serve_cost}) and searches
    the SoC: which Table I engines the instance slots carry, how many
    DMA channels the fabric ships, how wide the AXI beat is. It reuses
    the tuner's machinery — candidates live in an abstract index space
    searched by {!Tune_strategy} (grid or the cost-model-seeded greedy
    climb), infeasible candidates are pruned {e statically} (over the
    resource budget — the analogue of {!Tune_prune}), and every
    measurement is memoised under a {!Benchdiff.config_hash} key.

    Candidates are evaluated at the {e serving} level, not per-kernel:
    a platform's worth is what a whole request stream sees — slow slots
    drag the work-conserving dispatcher's tail latency in ways no
    isolated kernel time shows — so the oracle is a {!Platform_serve}
    run over a fixed request stream, scored as throughput and p99.

    The search reports a Pareto front over (throughput per resource
    unit, p99 latency): maximise the first, minimise the second. *)

type space = {
  ss_engines : string list;
      (** the engine pool instance slots draw from (Table I matmul
          preset names) *)
  ss_max_instances : int;  (** largest instance count considered *)
  ss_channels : int list;  (** DMA channel counts considered *)
  ss_beats : int list;  (** AXI beat widths considered *)
}

val default_space : space
(** Engines [v2_8; v3_16; v4_16], up to 3 instances, 1–3 channels,
    every {!Platform_ir.beat_widths} — 171 candidates before budget
    pruning. *)

val quick_space : space
(** Engines [v3_16; v4_16], up to 2 instances, 1–2 channels, beats
    [4; 8] — the @platform-quick CI space (20 candidates). *)

val enumerate : space -> (Platform_ir.t list, string) result
(** Every platform in the space: one per (engine multiset of size
    1..max, channel count, beat width). Deterministic order. [Error]
    when the space itself is malformed (unknown engine name, empty
    pool, no channels/beats, non-positive max) — field-qualified, like
    {!Platform_ir.validate}. *)

type point = {
  pt_platform : Platform_ir.t;
  pt_resource : float;  (** {!Platform_cost.resource_total} units *)
  pt_throughput_rps : float;
  pt_p99_cycles : float;
  pt_per_resource : float;  (** throughput / resource — the objective *)
}

type outcome = {
  sr_space : int;  (** candidates enumerated *)
  sr_over_budget : int;  (** statically pruned by the area budget *)
  sr_evaluated : int;  (** serving runs actually measured *)
  sr_best : point option;  (** highest throughput-per-resource found *)
  sr_front : point list;
      (** the Pareto front over (per-resource, p99), sorted by
          per-resource descending *)
  sr_baseline : point option;
      (** the homogeneous default, measured through the same oracle *)
}

val default_measure :
  ?freq_mhz:float ->
  ?queue_cap:int ->
  ?batch_max:int ->
  policy:Serve_policy.t ->
  models:(string * Tune_workload.named list) list ->
  requests:Serve_request.t list ->
  unit ->
  Platform_ir.t ->
  (float * float) option
(** The serving oracle: build the platform's {!Platform_serve} fleet,
    serve [requests] under [policy], return
    [(throughput_rps, p99_cycles)] — [None] when the run fails or
    nothing completes. The closure shares one {!Serve_cost} oracle per
    distinct engine configuration {e across every candidate it ever
    measures}, so a search's simulation cost scales with distinct
    engines, not candidates. [freq_mhz] defaults to the cost model's
    CPU clock; [batch_max] to 1. *)

val search :
  ?strategy:Tune_strategy.t ->
  ?area_budget:float ->
  ?baseline:Platform_ir.t ->
  measure:(Platform_ir.t -> (float * float) option) ->
  space ->
  (outcome, string) result
(** Run the search. [strategy] defaults to [Grid]; [area_budget]
    (resource units) statically prunes candidates whose
    {!Platform_cost.resource_total} exceeds it and must be positive;
    [baseline] (default [Platform_ir.homogeneous ~accels:2]) is
    measured through the same [measure] for the comparison row —
    {e not} subject to the budget. Every returned point (best, front,
    baseline excepted) respects the budget, and no front point is
    dominated on both axes — QCheck properties in the test suite.
    [measure] is memoised by platform {!Benchdiff.config_hash}, so the
    baseline reuses a candidate's measurement when it is one. *)

val pick_winner : outcome -> point option
(** The deployment recommendation: the highest-per-resource front
    point that ties-or-beats the baseline's p99 {e and} strictly beats
    its throughput-per-resource. Without a baseline, [sr_best]. [None]
    when nothing qualifies. *)

val render : outcome -> string
(** The Pareto-front table (platform, resource units, req/s, req/s
    per unit, p99) plus baseline and pruning counts, for
    [axi4mlir_tune --platform-search]. *)
