(* The resource model. Constants are documented in the interface and
   pinned by calibration tests — change them deliberately, with the
   pins re-blessed, never by accident. *)

let dsp_units_per_pe = 1.0

let version_factor = function
  | Accel_matmul.V1 -> 1.0
  | Accel_matmul.V2 -> 1.05
  | Accel_matmul.V3 -> 1.1
  | Accel_matmul.V4 -> 1.25

let bram_bytes_per_unit = 2048.0
let conv_sidecar_units = 24.0
let channel_units = 8.0
let beat_units_per_byte = 1.5

let bytes_per_elem = 4.0 (* f32 *)

let engine_units (config : Accel_config.t) =
  match config.Accel_config.engine with
  | Accel_config.Conv_engine ->
    failwith
      "Platform_cost.engine_units: instances carry matmul engines (the conv \
       sidecar is a flat per-instance cost)"
  | Accel_config.Matmul_engine (version, size) ->
    let pes = float_of_int (size * size) in
    let bram =
      3.0
      *. float_of_int config.Accel_config.buffer_capacity_elems
      *. bytes_per_elem /. bram_bytes_per_unit
    in
    (pes *. dsp_units_per_pe *. version_factor version) +. bram +. conv_sidecar_units

let resource_total (p : Platform_ir.t) =
  let rec instances acc = function
    | [] -> Ok acc
    | inst :: rest -> (
      match Platform_ir.engine_config inst with
      | Error msg ->
        Error (Printf.sprintf "resource model: instance %s: %s" inst.Platform_ir.in_id msg)
      | Ok config -> instances (acc +. engine_units config) rest)
  in
  match instances 0.0 p.Platform_ir.pf_instances with
  | Error _ as e -> e
  | Ok engines ->
    let channels = float_of_int p.Platform_ir.pf_dma_channels in
    Ok
      (engines
      +. (channel_units *. channels)
      +. (beat_units_per_byte *. float_of_int p.Platform_ir.pf_axi_beat_bytes *. channels))

let resource_total_exn p =
  match resource_total p with Ok r -> r | Error msg -> failwith msg
