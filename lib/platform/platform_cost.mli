(** The platform resource model: every platform description has a
    scalar resource total, so architecture searches can run under an
    [--area-budget].

    Costs are abstract FPGA "units" in the spirit of a DSP/BRAM/LUT
    budget, not calibrated against one device family — what matters
    for the search is that the {e relative} costs follow the
    mechanisms (a size-16 systolic array carries 4x the MACs of a
    size-8 one; v4's flexible tiling pays datapath muxing; buffers pay
    BRAM per byte; channels and wider beats pay interconnect). The
    individual constants are documented here and pinned by calibration
    tests in [test/suite_platform.ml], like the conv 16-cycles/MAC
    proxy ({!Heuristics.conv_cycles_per_mac}) — an intentional change
    must re-bless the pins.

    The total is strictly monotone in every platform dimension —
    adding an instance, a DMA channel, a byte of beat width or a
    buffer element never makes a platform cheaper (a QCheck property
    in the test suite). *)

val dsp_units_per_pe : float
(** 1.0 — one DSP-style unit per processing element of the size x size
    compute array. *)

val version_factor : Accel_matmul.version -> float
(** Control/datapath overhead multiplier on the compute array: v1 1.0
    (single fused opcode, minimal control), v2 1.05, v3 1.1 (separate
    compute/drain sequencing), v4 1.25 (runtime-configurable tile
    geometry muxes the whole datapath). *)

val bram_bytes_per_unit : float
(** 2048.0 — one BRAM-style unit per 2 KiB of tile-buffer storage;
    every instance carries three per-operand buffers of
    [buffer_capacity_elems] f32 elements. *)

val conv_sidecar_units : float
(** 24.0 — flat per-instance cost of the Sec. IV-D Conv2D sidecar
    engine (fixed geometry, identical on every slot). *)

val channel_units : float
(** 8.0 — per DMA channel (descriptor engine + interconnect port). *)

val beat_units_per_byte : float
(** 1.5 — per byte of AXI beat width, {e per channel} (the data path
    of every channel widens with the bus). *)

val engine_units : Accel_config.t -> float
(** One instance's cost: [size^2 * version_factor + 3 * capacity_elems
    * 4 / bram_bytes_per_unit + conv_sidecar_units]. Raises [Failure]
    on a conv-engine config (instances carry matmul engines; the conv
    sidecar is priced by {!conv_sidecar_units}). *)

val resource_total : Platform_ir.t -> (float, string) result
(** The platform's scalar resource total: the sum of its instances'
    {!engine_units} plus [channel_units * channels] plus
    [beat_units_per_byte * beat_bytes * channels]. [Error] when an
    instance fails {!Platform_ir.engine_config}. *)

val resource_total_exn : Platform_ir.t -> float
(** As {!resource_total}; raises [Failure]. *)
