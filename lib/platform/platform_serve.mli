(** Instantiating the serving simulator from a platform description.

    This is the bridge the architecture search evaluates through: a
    {!Platform_ir.t} becomes a heterogeneous fleet — one
    {!Serve_cost} oracle per {e distinct} engine configuration (shared
    across same-engine instances, so measurement cost scales with
    distinct engines, not slots), wired into {!Serve_sim.run} through
    its [service_at]/[predict_at] hooks.

    {2 The platform transfer model}

    The oracle measures each kernel on the paper's baseline bus (one
    4-byte word per beat, a channel per accelerator). A platform
    changes only the {e transfer} share of that measurement:

    [service = compute + dma * (4 / beat_bytes) * max(1, instances / channels)]

    where [dma] is the DMA share estimated from the run's perf
    counters ([dma_words * Cost_model.cpu_cycles_per_word], clamped to
    the measured total) and [compute] is the remainder. A wider beat
    moves more bytes per cycle; more instances than channels serialise
    on the shared DMA engines. When the scale is exactly 1 — at least
    one channel per instance and the 4-byte baseline beat — the
    measured cycles are returned {e without any arithmetic}, so a
    homogeneous platform run is bit-identical to the equivalent
    [--accels K] run (gated by [bench/exp_platform]). *)

type t

val create :
  ?oracles:(string, Serve_cost.t) Hashtbl.t ->
  ?graphs:(string * Graph_ir.t) list ->
  ?graph_residency:bool ->
  platform:Platform_ir.t ->
  (string * Tune_workload.named list) list ->
  t
(** Build the per-instance oracle fleet. The platform must be valid
    (raises [Failure] with the {!Platform_ir.validate} message
    otherwise — CLI callers validate first via
    {!Platform_ir.load_file}). [graphs]/[graph_residency] are passed
    through to every {!Serve_cost.create}.

    [oracles] is the engine-fingerprint-keyed oracle registry to use
    and extend; passing the same table across [create] calls shares
    memoised measurements between fleets — how {!Platform_search}
    keeps a whole search's simulation cost proportional to distinct
    engines. Default: a fresh private table. *)

val platform : t -> Platform_ir.t

val engines : t -> string list
(** {!Platform_ir.instance_names} — what {!Serve_report.summarize}
    takes as [engines]. *)

val distinct_oracles : t -> int
(** How many distinct engine configurations the fleet compiled — the
    number of oracles actually built. *)

val memo_stats : t -> int * int
(** [(hits, misses)] summed over the distinct oracles. *)

val dma_scale : Platform_ir.t -> float
(** The transfer multiplier [(4 / beat_bytes) * max(1, instances /
    channels)]. Exactly [1.0] (computed without FP division) when
    [channels >= instances] and [beat_bytes = 4]. *)

val service_at : t -> accel:int -> string -> batch:int -> float
(** Instance [accel]'s service time for one dispatch: the instance's
    oracle measurement with the platform transfer model applied.
    Raises [Failure] on an out-of-range index or any
    {!Serve_cost.service} failure. *)

val predict_at : t -> accel:int -> string -> float
(** Instance [accel]'s SJF ranking key ({!Serve_cost.predict} on its
    oracle — a v3_16 slot ranks with v3_16 predictions). *)

val run :
  ?telemetry:Serve_telemetry.t ->
  ?queue_cap:int ->
  ?batch_max:int ->
  policy:Serve_policy.t ->
  t ->
  Serve_request.t list ->
  (Serve_sim.outcome, string) result
(** Serve a stream on the platform: {!Serve_sim.run} with
    [sp_accels = n_instances], the platform hooks, and instance 0's
    oracle as the uniform fallback (never consulted — the hooks are
    always given). [batch_max] defaults to 1. *)
