(** Platform descriptions: the SoC half of the co-design search.

    The paper fixes the platform and tunes the host code; "Platform-
    Aware FPGA System Architecture Generation based on MLIR" (Soldavini
    & Pilato) makes the platform itself a search dimension. A platform
    description is the machine-readable record of one point in that
    space: a list of accelerator {e instances} (which Table I matmul
    engine each slot carries, optionally with a tile-buffer capacity
    override), how many DMA channels the SoC ships, and the AXI beat
    width of the streaming bus. The serving simulator instantiates a
    platform directly ([axi4mlir_serve --platform FILE]) and the
    architecture search ({!Platform_search}) emits one as its winner.

    Every instance also carries the Sec. IV-D Conv2D engine as a fixed
    sidecar — conv layers run the same on every slot; only the matmul
    engine (and the buffer capacity) varies per instance.

    {2 The [axi4mlir-platform-v1] artifact}

    COMPATIBILITY RULE (same as [axi4mlir-graph-v1] /
    [axi4mlir-critpath-v1]): the schema is {e add-only}. New fields may
    be appended to any object; existing fields must never be renamed,
    re-typed, reordered or removed — a golden test under [test/golden/]
    pins a committed preset byte for byte. If a breaking change is ever
    unavoidable, bump the schema string. *)

val schema : string
(** ["axi4mlir-platform-v1"]. *)

type instance = {
  in_id : string;  (** unique instance id, e.g. ["acc0"] *)
  in_engine : string;
      (** a Table I matmul preset name (["v1_4"] ... ["v4_16"]); the
          conv sidecar is implicit and not named here *)
  in_capacity_elems : int option;
      (** per-operand tile-buffer capacity override, in elements
          (default: the engine preset's capacity) *)
}

type t = {
  pf_name : string;
  pf_instances : instance list;
  pf_dma_channels : int;  (** shared DMA channels, >= 1 *)
  pf_axi_beat_bytes : int;  (** AXI-S data beat width: 4, 8 or 16 *)
}

val beat_widths : int list
(** The valid [pf_axi_beat_bytes] values: [[4; 8; 16]]. 4 bytes (one
    f32 word per beat) is the paper's baseline bus. *)

val validate : t -> (unit, string) result
(** Full consistency check: non-empty name and instance list, unique
    non-empty instance ids, at least one DMA channel, a valid beat
    width, every engine a known Table I matmul preset, and every
    capacity override positive and accepted by
    {!Accel_config.validate} on the instantiated config. Errors are
    field-qualified ("platform.instances[1].engine: ..."). *)

val engine_config : instance -> (Accel_config.t, string) result
(** The fully-instantiated {!Accel_config.t} an instance describes:
    the preset with the capacity override applied. *)

val n_instances : t -> int

val instance_names : t -> string list
(** Per-instance engine preset names, in instance order — what
    {!Serve_report} renders in the accel table. *)

val homogeneous : ?name:string -> accels:int -> unit -> t
(** The platform equivalent to [axi4mlir_serve --accels K] today:
    [accels] v4_16 instances, one DMA channel per instance, the 4-byte
    baseline beat. A serve run over this platform is bit-identical to
    the [--accels K] run (gated by [bench/exp_platform]). *)

val presets : (string * t) list
(** Committed named platforms:
    - ["pynq-2xv4"]: two v4_16 instances, 2 channels, beat 4 — the
      homogeneous default rendered as a platform description;
    - ["hetero-v3v4"]: one v4_16 next to one v3_16 on 2 channels — the
      smallest genuinely heterogeneous SoC;
    - ["budget-4xv2"]: four v2_8 instances sharing 2 channels at beat
      8 — many cheap engines behind a fast narrow bus. *)

val find_preset : string -> (t, string) result
(** Look a preset up by name; an unknown name lists every valid
    preset. *)

val of_json_result : Json.t -> (t, string) result
(** Parse and {!validate} a platform description. Every malformed
    input — wrong schema string, missing or mistyped field, unknown
    engine, zero channels, duplicate instance ids, bad beat width —
    yields [Error] with a field-qualified message, never an
    exception. *)

val of_json : Json.t -> t
(** As {!of_json_result}; raises [Failure] with the same structured
    message. *)

val to_json : t -> Json.t
(** The [axi4mlir-platform-v1] document (see the compatibility
    rule). [of_json (to_json p) = p] for every valid [p]. *)

val to_string : t -> string
(** One-line summary ("2x v4_16 + 1x v3_16, 2 ch, beat 8") for tables
    and remarks. *)

val write_file : string -> t -> unit
(** [Json.to_string ~indent:1] plus a trailing newline — the
    byte-stable rendering the golden test pins. *)

val load_file : string -> (t, string) result
(** Read and parse a platform file; [Error] (never an exception) on a
    missing file, unreadable JSON or a failed validation. *)
