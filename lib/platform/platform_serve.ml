(* Platform -> heterogeneous serving fleet: a Serve_cost oracle per
   distinct engine config, Serve_sim hooks, and the transfer model
   that applies the platform's beat width and channel contention to
   the DMA share of each measured service time. *)

type t = {
  ps_platform : Platform_ir.t;
  ps_oracles : Serve_cost.t array;  (* by instance index; shared per engine *)
  ps_distinct : int;
  ps_scale : float;
  ps_identity : bool;  (* scale is exactly 1: skip all FP arithmetic *)
}

let dma_scale (p : Platform_ir.t) =
  let insts = Platform_ir.n_instances p in
  let channels = p.Platform_ir.pf_dma_channels in
  if channels >= insts && p.Platform_ir.pf_axi_beat_bytes = 4 then 1.0
  else begin
    let beat = 4.0 /. float_of_int p.Platform_ir.pf_axi_beat_bytes in
    let contention =
      if insts > channels then float_of_int insts /. float_of_int channels else 1.0
    in
    beat *. contention
  end

let scale_is_identity (p : Platform_ir.t) =
  p.Platform_ir.pf_dma_channels >= Platform_ir.n_instances p
  && p.Platform_ir.pf_axi_beat_bytes = 4

let create ?oracles ?(graphs = []) ?(graph_residency = true) ~platform models =
  (match Platform_ir.validate platform with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let registry =
    match oracles with Some r -> r | None -> Hashtbl.create 4
  in
  let oracle_of inst =
    let config =
      match Platform_ir.engine_config inst with
      | Ok c -> c
      | Error msg ->
        failwith
          (Printf.sprintf "platform: instance %s: %s" inst.Platform_ir.in_id msg)
    in
    let key = Benchdiff.config_hash (Accel_config.to_json config) in
    match Hashtbl.find_opt registry key with
    | Some o -> o
    | None ->
      let o = Serve_cost.create ~matmul_accel:config ~graphs ~graph_residency models in
      Hashtbl.add registry key o;
      o
  in
  let fleet = Array.of_list (List.map oracle_of platform.Platform_ir.pf_instances) in
  let distinct =
    (* by physical identity: a shared registry may hold oracles built
       for other platforms; only count the ones this fleet references *)
    List.length
      (Array.fold_left
         (fun acc o -> if List.memq o acc then acc else o :: acc)
         [] fleet)
  in
  {
    ps_platform = platform;
    ps_oracles = fleet;
    ps_distinct = distinct;
    ps_scale = dma_scale platform;
    ps_identity = scale_is_identity platform;
  }

let platform t = t.ps_platform

let engines t = Platform_ir.instance_names t.ps_platform

let distinct_oracles t = t.ps_distinct

let memo_stats t =
  (* sum over distinct oracles only (instances share them) *)
  let seen = ref [] in
  Array.fold_left
    (fun (h, m) o ->
      if List.memq o !seen then (h, m)
      else begin
        seen := o :: !seen;
        let oh, om = Serve_cost.memo_stats o in
        (h + oh, m + om)
      end)
    (0, 0) t.ps_oracles

let oracle_at t idx =
  if idx < 0 || idx >= Array.length t.ps_oracles then
    failwith
      (Printf.sprintf "platform: accelerator index %d out of range (platform has %d)"
         idx (Array.length t.ps_oracles))
  else t.ps_oracles.(idx)

let cycles_per_word = lazy (Cost_model.cpu_cycles_per_word Cost_model.default)

let service_at t ~accel model ~batch =
  let cycles, words = Serve_cost.service_parts (oracle_at t accel) model ~batch in
  if t.ps_identity then cycles
  else begin
    (* split the measurement into its DMA and compute shares, scale
       only the DMA share. The estimate is clamped to the measured
       total: a kernel can never be more than all-transfer. *)
    let dma = Float.min cycles (words *. Lazy.force cycles_per_word) in
    let compute = cycles -. dma in
    compute +. (dma *. t.ps_scale)
  end

let predict_at t ~accel model = Serve_cost.predict (oracle_at t accel) model

let run ?telemetry ?queue_cap ?(batch_max = 1) ~policy t requests =
  let params =
    {
      Serve_sim.sp_accels = Platform_ir.n_instances t.ps_platform;
      sp_policy = policy;
      sp_queue_cap = queue_cap;
      sp_batch_max = batch_max;
    }
  in
  Serve_sim.run ?telemetry
    ~service_at:(fun ~accel model ~batch -> service_at t ~accel model ~batch)
    ~predict_at:(fun ~accel model -> predict_at t ~accel model)
    ~service:(fun model ~batch -> service_at t ~accel:0 model ~batch)
    ~predict:(fun model -> predict_at t ~accel:0 model)
    params requests
