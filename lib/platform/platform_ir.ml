(* The platform description IR: validated record, named presets, and
   the byte-stable add-only axi4mlir-platform-v1 JSON artifact. *)

let schema = "axi4mlir-platform-v1"

type instance = {
  in_id : string;
  in_engine : string;
  in_capacity_elems : int option;
}

type t = {
  pf_name : string;
  pf_instances : instance list;
  pf_dma_channels : int;
  pf_axi_beat_bytes : int;
}

let beat_widths = [ 4; 8; 16 ]

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let matmul_preset_names =
  List.filter (fun n -> n <> "conv2d") Presets.names

let engine_config inst =
  match Presets.find_by_name inst.in_engine with
  | Error _ ->
    Error
      (Printf.sprintf
         "unknown engine %S (instances name Table I matmul presets: %s; the conv \
          engine is an implicit sidecar)"
         inst.in_engine
         (String.concat ", " matmul_preset_names))
  | Ok config -> (
    match config.Accel_config.engine with
    | Accel_config.Conv_engine ->
      Error
        (Printf.sprintf
           "engine %S is the conv sidecar, not a per-instance matmul engine"
           inst.in_engine)
    | Accel_config.Matmul_engine _ -> (
      match inst.in_capacity_elems with
      | None -> Ok config
      | Some cap when cap <= 0 ->
        Error (Printf.sprintf "capacity override must be positive (got %d)" cap)
      | Some cap ->
        let config = { config with Accel_config.buffer_capacity_elems = cap } in
        (match Accel_config.validate config with
        | Ok () -> Ok config
        | Error msg ->
          Error (Printf.sprintf "capacity override %d: %s" cap msg))))

let validate p =
  let* () =
    if String.trim p.pf_name = "" then Error "platform.name: must not be empty"
    else Ok ()
  in
  let* () =
    if p.pf_instances = [] then
      Error "platform.instances: need at least one accelerator instance"
    else Ok ()
  in
  let* () =
    if p.pf_dma_channels < 1 then
      Error
        (Printf.sprintf "platform.dma_channels: need at least one DMA channel (got %d)"
           p.pf_dma_channels)
    else Ok ()
  in
  let* () =
    if not (List.mem p.pf_axi_beat_bytes beat_widths) then
      Error
        (Printf.sprintf "platform.axi_beat_bytes: %d is not a valid beat width (valid: %s)"
           p.pf_axi_beat_bytes
           (String.concat ", " (List.map string_of_int beat_widths)))
    else Ok ()
  in
  let rec check_instances seen i = function
    | [] -> Ok ()
    | inst :: rest ->
      let path = Printf.sprintf "platform.instances[%d]" i in
      let* () =
        if String.trim inst.in_id = "" then
          Error (Printf.sprintf "%s.id: must not be empty" path)
        else Ok ()
      in
      let* () =
        if List.mem inst.in_id seen then
          Error (Printf.sprintf "%s.id: duplicate instance id %S" path inst.in_id)
        else Ok ()
      in
      let* _config =
        match engine_config inst with
        | Ok c -> Ok c
        | Error msg -> Error (Printf.sprintf "%s.engine: %s" path msg)
      in
      check_instances (inst.in_id :: seen) (i + 1) rest
  in
  check_instances [] 0 p.pf_instances

let n_instances p = List.length p.pf_instances

let instance_names p = List.map (fun i -> i.in_engine) p.pf_instances

(* ------------------------------------------------------------------ *)
(* Presets                                                             *)
(* ------------------------------------------------------------------ *)

let mk_instances engines =
  List.mapi
    (fun i engine ->
      { in_id = Printf.sprintf "acc%d" i; in_engine = engine; in_capacity_elems = None })
    engines

let homogeneous ?name ~accels () =
  let name =
    match name with Some n -> n | None -> Printf.sprintf "homogeneous-%dxv4_16" accels
  in
  {
    pf_name = name;
    pf_instances = mk_instances (List.init accels (fun _ -> "v4_16"));
    pf_dma_channels = max 1 accels;
    pf_axi_beat_bytes = 4;
  }

let presets =
  [
    ("pynq-2xv4", homogeneous ~name:"pynq-2xv4" ~accels:2 ());
    ( "hetero-v3v4",
      {
        pf_name = "hetero-v3v4";
        pf_instances = mk_instances [ "v4_16"; "v3_16" ];
        pf_dma_channels = 2;
        pf_axi_beat_bytes = 4;
      } );
    ( "budget-4xv2",
      {
        pf_name = "budget-4xv2";
        pf_instances = mk_instances [ "v2_8"; "v2_8"; "v2_8"; "v2_8" ];
        pf_dma_channels = 2;
        pf_axi_beat_bytes = 8;
      } );
  ]

let find_preset name =
  match List.assoc_opt name presets with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown platform preset %S (valid presets: %s)" name
         (String.concat ", " (List.map fst presets)))

(* ------------------------------------------------------------------ *)
(* JSON (axi4mlir-platform-v1, add-only)                               *)
(* ------------------------------------------------------------------ *)

let instance_json inst =
  Json.Obj
    [
      ("id", Json.String inst.in_id);
      ("engine", Json.String inst.in_engine);
      ( "capacity_elems",
        match inst.in_capacity_elems with None -> Json.Null | Some c -> Json.Int c );
    ]

let to_json p =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("name", Json.String p.pf_name);
      ("dma_channels", Json.Int p.pf_dma_channels);
      ("axi_beat_bytes", Json.Int p.pf_axi_beat_bytes);
      ("instances", Json.List (List.map instance_json p.pf_instances));
    ]

let field ?(path = "platform") name json convert =
  match Json.member_opt name json with
  | None -> Error (Printf.sprintf "%s.%s: missing field" path name)
  | Some v -> (
    match convert v with
    | v -> Ok v
    | exception Json.Type_error msg -> Error (Printf.sprintf "%s.%s: %s" path name msg)
    | exception Failure msg -> Error (Printf.sprintf "%s.%s: %s" path name msg))

let instance_of_json i json =
  let path = Printf.sprintf "platform.instances[%d]" i in
  match json with
  | Json.Obj _ ->
    let* in_id = field ~path "id" json Json.to_str in
    let* in_engine = field ~path "engine" json Json.to_str in
    let* in_capacity_elems =
      match Json.member_opt "capacity_elems" json with
      | None | Some Json.Null -> Ok None
      | Some v -> (
        match Json.to_int v with
        | c -> Ok (Some c)
        | exception Json.Type_error msg ->
          Error (Printf.sprintf "%s.capacity_elems: %s" path msg))
    in
    Ok { in_id; in_engine; in_capacity_elems }
  | _ -> Error (Printf.sprintf "%s: expected a JSON object" path)

let of_json_result json =
  match json with
  | Json.Obj _ ->
    let* got_schema = field "schema" json Json.to_str in
    let* () =
      if got_schema <> schema then
        Error
          (Printf.sprintf "platform.schema: expected %S, got %S" schema got_schema)
      else Ok ()
    in
    let* pf_name = field "name" json Json.to_str in
    let* pf_dma_channels = field "dma_channels" json Json.to_int in
    let* pf_axi_beat_bytes = field "axi_beat_bytes" json Json.to_int in
    let* instances_json = field "instances" json Json.to_list in
    let rec parse_instances acc i = function
      | [] -> Ok (List.rev acc)
      | v :: rest ->
        let* inst = instance_of_json i v in
        parse_instances (inst :: acc) (i + 1) rest
    in
    let* pf_instances = parse_instances [] 0 instances_json in
    let p = { pf_name; pf_instances; pf_dma_channels; pf_axi_beat_bytes } in
    let* () = validate p in
    Ok p
  | _ -> Error "platform: expected a JSON object"

let of_json json =
  match of_json_result json with Ok p -> p | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Rendering and files                                                 *)
(* ------------------------------------------------------------------ *)

let to_string p =
  (* collapse equal adjacent engines: "2x v4_16 + 1x v3_16, 2 ch, beat 8" *)
  let rec group = function
    | [] -> []
    | e :: rest ->
      let same, others = List.partition (fun x -> x = e) rest in
      (e, 1 + List.length same) :: group others
  in
  let engines =
    String.concat " + "
      (List.map
         (fun (e, n) -> Printf.sprintf "%dx %s" n e)
         (group (instance_names p)))
  in
  Printf.sprintf "%s, %d ch, beat %d" engines p.pf_dma_channels p.pf_axi_beat_bytes

let write_file path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:1 (to_json p));
      output_char oc '\n')

let load_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Printf.sprintf "platform: %s" msg)
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match Json.of_string text with
    | json -> of_json_result json
    | exception Json.Parse_error msg ->
      Error (Printf.sprintf "platform: %s: %s" path msg))
