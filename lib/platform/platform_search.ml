(* Architecture search over platform descriptions: enumerate (engine
   multiset, channels, beat) candidates, prune statically against the
   area budget, search the rest with Tune_strategy, score through the
   serving oracle, report a Pareto front. *)

type space = {
  ss_engines : string list;
  ss_max_instances : int;
  ss_channels : int list;
  ss_beats : int list;
}

let default_space =
  {
    ss_engines = [ "v2_8"; "v3_16"; "v4_16" ];
    ss_max_instances = 3;
    ss_channels = [ 1; 2; 3 ];
    ss_beats = Platform_ir.beat_widths;
  }

let quick_space =
  {
    ss_engines = [ "v3_16"; "v4_16" ];
    ss_max_instances = 2;
    ss_channels = [ 1; 2 ];
    ss_beats = [ 4; 8 ];
  }

let ( let* ) = Result.bind

let validate_space s =
  let* () =
    if s.ss_engines = [] then Error "space.engines: need at least one engine"
    else Ok ()
  in
  let* () =
    if s.ss_max_instances < 1 then
      Error
        (Printf.sprintf "space.max_instances: need at least one instance slot (got %d)"
           s.ss_max_instances)
    else Ok ()
  in
  let* () =
    if s.ss_channels = [] || List.exists (fun c -> c < 1) s.ss_channels then
      Error "space.channels: need a non-empty list of positive channel counts"
    else Ok ()
  in
  let* () =
    if s.ss_beats = [] || List.exists (fun b -> not (List.mem b Platform_ir.beat_widths)) s.ss_beats
    then
      Error
        (Printf.sprintf "space.beats: need a non-empty subset of the valid beat widths (%s)"
           (String.concat ", " (List.map string_of_int Platform_ir.beat_widths)))
    else Ok ()
  in
  (* every pool engine must instantiate: reuse the IR's own check *)
  let rec engines = function
    | [] -> Ok ()
    | e :: rest -> (
      let probe =
        { Platform_ir.in_id = "probe"; in_engine = e; in_capacity_elems = None }
      in
      match Platform_ir.engine_config probe with
      | Ok _ -> engines rest
      | Error msg -> Error (Printf.sprintf "space.engines: %s" msg))
  in
  engines s.ss_engines

(* Engine multisets of size 1..max as non-decreasing index sequences,
   so [v4;v3] and [v3;v4] are the same candidate. *)
let multisets pool max_size =
  let n = List.length pool in
  let rec go size start =
    if size = 0 then [ [] ]
    else
      List.concat
        (List.init (n - start) (fun off ->
             let i = start + off in
             List.map (fun rest -> List.nth pool i :: rest) (go (size - 1) i)))
  in
  List.concat (List.init max_size (fun k -> go (k + 1) 0))

let candidate engines channels beat =
  {
    Platform_ir.pf_name =
      Printf.sprintf "cand-%s-%dch-b%d" (String.concat "+" engines) channels beat;
    pf_instances =
      List.mapi
        (fun i e ->
          {
            Platform_ir.in_id = Printf.sprintf "acc%d" i;
            in_engine = e;
            in_capacity_elems = None;
          })
        engines;
    pf_dma_channels = channels;
    pf_axi_beat_bytes = beat;
  }

let enumerate s =
  let* () = validate_space s in
  Ok
    (List.concat_map
       (fun engines ->
         List.concat_map
           (fun channels ->
             List.map (fun beat -> candidate engines channels beat) s.ss_beats)
           s.ss_channels)
       (multisets s.ss_engines s.ss_max_instances))

type point = {
  pt_platform : Platform_ir.t;
  pt_resource : float;
  pt_throughput_rps : float;
  pt_p99_cycles : float;
  pt_per_resource : float;
}

type outcome = {
  sr_space : int;
  sr_over_budget : int;
  sr_evaluated : int;
  sr_best : point option;
  sr_front : point list;
  sr_baseline : point option;
}

(* ------------------------------------------------------------------ *)
(* The serving oracle                                                  *)
(* ------------------------------------------------------------------ *)

let default_measure ?freq_mhz ?queue_cap ?(batch_max = 1) ~policy ~models ~requests
    () =
  let freq_mhz =
    match freq_mhz with
    | Some f -> f
    | None -> Cost_model.default.Cost_model.cpu_freq_mhz
  in
  (* one Serve_cost oracle per distinct engine config, shared across
     every candidate this closure ever measures: the search's
     simulation cost scales with distinct engines, not candidates *)
  let oracles : (string, Serve_cost.t) Hashtbl.t = Hashtbl.create 8 in
  fun (p : Platform_ir.t) ->
    let fleet = Platform_serve.create ~oracles ~platform:p models in
    match Platform_serve.run ?queue_cap ~batch_max ~policy fleet requests with
    | Error _ -> None
    | Ok outcome -> (
      let s = Serve_report.summarize ~freq_mhz policy outcome in
      match s.Serve_report.sm_throughput_rps with
      | None -> None
      | Some rps -> Some (rps, s.Serve_report.sm_latency.Serve_report.d_p99))

(* ------------------------------------------------------------------ *)
(* Neighborhood: candidates differing in exactly one knob              *)
(* ------------------------------------------------------------------ *)

let multiset_distance a b =
  (* sum over engines of |count_a - count_b| *)
  let count xs e = List.length (List.filter (( = ) e) xs) in
  let universe = List.sort_uniq compare (a @ b) in
  List.fold_left (fun acc e -> acc + abs (count a e - count b e)) 0 universe

let are_neighbors (a : Platform_ir.t) (b : Platform_ir.t) =
  let ea = Platform_ir.instance_names a and eb = Platform_ir.instance_names b in
  let same_engines = List.sort compare ea = List.sort compare eb in
  let same_channels = a.Platform_ir.pf_dma_channels = b.Platform_ir.pf_dma_channels in
  let same_beat = a.Platform_ir.pf_axi_beat_bytes = b.Platform_ir.pf_axi_beat_bytes in
  (same_engines && same_channels && not same_beat)
  || (same_engines && same_beat && not same_channels)
  || (same_channels && same_beat && (not same_engines)
     && multiset_distance ea eb <= 2
     && abs (List.length ea - List.length eb) <= 1)

(* ------------------------------------------------------------------ *)
(* The seeding proxy (greedy's predicted ranking)                      *)
(* ------------------------------------------------------------------ *)

(* Analytic only — never simulates. Raw compute = total PEs; assume
   kernels are about half transfer on the baseline bus (they are
   DMA-bound on the larger engines), so the platform's DMA scale moves
   half of the predicted service time; divide by resource for the
   objective. Strategies only need a ranking. *)
let predict_proxy (p : Platform_ir.t) =
  let pes =
    List.fold_left
      (fun acc inst ->
        match Platform_ir.engine_config inst with
        | Ok { Accel_config.engine = Accel_config.Matmul_engine (_, size); _ } ->
          acc +. float_of_int (size * size)
        | Ok _ | Error _ -> acc)
      0.0 p.Platform_ir.pf_instances
  in
  let scale = Platform_serve.dma_scale p in
  let rate = pes /. (0.5 +. (0.5 *. scale)) in
  match Platform_cost.resource_total p with
  | Ok res when res > 0.0 -> -. (rate /. res)
  | Ok _ | Error _ -> 0.0

(* ------------------------------------------------------------------ *)
(* Pareto front over (per-resource max, p99 min)                       *)
(* ------------------------------------------------------------------ *)

let dominated_by a b =
  (* b dominates a: no worse on both axes, strictly better on one *)
  b.pt_per_resource >= a.pt_per_resource
  && b.pt_p99_cycles <= a.pt_p99_cycles
  && (b.pt_per_resource > a.pt_per_resource || b.pt_p99_cycles < a.pt_p99_cycles)

let front_of points =
  let front =
    List.filter (fun a -> not (List.exists (fun b -> dominated_by a b) points)) points
  in
  List.sort
    (fun a b ->
      compare
        (b.pt_per_resource, a.pt_p99_cycles, a.pt_platform.Platform_ir.pf_name)
        (a.pt_per_resource, b.pt_p99_cycles, b.pt_platform.Platform_ir.pf_name))
    front

(* ------------------------------------------------------------------ *)
(* The search                                                          *)
(* ------------------------------------------------------------------ *)

let search ?(strategy = Tune_strategy.Grid) ?area_budget ?baseline ~measure s =
  let* () =
    match area_budget with
    | Some b when not (b > 0.0) ->
      Error
        (Printf.sprintf "area budget must be positive (got %g resource units)" b)
    | _ -> Ok ()
  in
  let* all = enumerate s in
  let* scored =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
        let* r =
          match Platform_cost.resource_total p with
          | Ok r -> Ok r
          | Error msg -> Error (Printf.sprintf "%s: %s" p.Platform_ir.pf_name msg)
        in
        go ((p, r) :: acc) rest
    in
    go [] all
  in
  let kept, over =
    List.partition
      (fun (_, r) ->
        match area_budget with None -> true | Some b -> r <= b)
      scored
  in
  let candidates = Array.of_list kept in
  let n = Array.length candidates in
  (* measurements memoised by the platform document's config hash:
     strategies already evaluate each index once, but the baseline (and
     re-searches sharing a measure closure) reuse results through it *)
  let memo : (string, (float * float) option) Hashtbl.t = Hashtbl.create 32 in
  let measure_memo p =
    let key = Benchdiff.config_hash (Platform_ir.to_json p) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      let r = measure p in
      Hashtbl.add memo key r;
      r
  in
  let points = Hashtbl.create 32 in
  let point_of p resource =
    match measure_memo p with
    | None -> None
    | Some (rps, p99) ->
      if resource > 0.0 then
        Some
          {
            pt_platform = p;
            pt_resource = resource;
            pt_throughput_rps = rps;
            pt_p99_cycles = p99;
            pt_per_resource = rps /. resource;
          }
      else None
  in
  let eval i =
    let p, resource = candidates.(i) in
    match point_of p resource with
    | None -> None
    | Some pt ->
      Hashtbl.replace points i pt;
      (* Tune_strategy minimises; the objective is max per-resource *)
      Some (-.pt.pt_per_resource)
  in
  let neighbors i =
    let p, _ = candidates.(i) in
    let out = ref [] in
    for j = n - 1 downto 0 do
      if j <> i && are_neighbors p (fst candidates.(j)) then out := j :: !out
    done;
    !out
  in
  let predict i = predict_proxy (fst candidates.(i)) in
  let best_idx, evaluated =
    if n = 0 then (None, 0) else Tune_strategy.run strategy ~n ~predict ~neighbors ~eval
  in
  let evaluated_points = Hashtbl.fold (fun _ pt acc -> pt :: acc) points [] in
  let baseline_pt =
    let b = match baseline with Some b -> b | None -> Platform_ir.homogeneous ~accels:2 () in
    match Platform_cost.resource_total b with
    | Error _ -> None
    | Ok r -> point_of b r
  in
  Ok
    {
      sr_space = List.length all;
      sr_over_budget = List.length over;
      sr_evaluated = evaluated;
      sr_best =
        (match best_idx with Some (i, _) -> Hashtbl.find_opt points i | None -> None);
      sr_front = front_of evaluated_points;
      sr_baseline = baseline_pt;
    }

let pick_winner r =
  match r.sr_baseline with
  | None -> r.sr_best
  | Some b ->
    List.find_opt
      (fun pt ->
        pt.pt_per_resource > b.pt_per_resource && pt.pt_p99_cycles <= b.pt_p99_cycles)
      r.sr_front (* front is sorted by per-resource descending *)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "platform search: %d candidate(s), %d over budget, %d measured\n" r.sr_space
       r.sr_over_budget r.sr_evaluated);
  let t =
    Tabulate.create
      [
        ("platform", Tabulate.Left);
        ("units", Tabulate.Right);
        ("req/s", Tabulate.Right);
        ("req/s/unit", Tabulate.Right);
        ("p99 cycles", Tabulate.Right);
        ("", Tabulate.Left);
      ]
  in
  let row tag pt =
    Tabulate.add_row t
      [
        Platform_ir.to_string pt.pt_platform;
        Printf.sprintf "%.1f" pt.pt_resource;
        Printf.sprintf "%.1f" pt.pt_throughput_rps;
        Printf.sprintf "%.4f" pt.pt_per_resource;
        Printf.sprintf "%.0f" pt.pt_p99_cycles;
        tag;
      ]
  in
  List.iter
    (fun pt ->
      row
        (match pick_winner r with
        | Some w when w.pt_platform.Platform_ir.pf_name = pt.pt_platform.Platform_ir.pf_name ->
          "<- winner"
        | _ -> "")
        pt)
    r.sr_front;
  (match r.sr_baseline with Some b -> row "(baseline)" b | None -> ());
  let table = Tabulate.render t in
  Buffer.add_string buf table;
  if not (String.length table > 0 && table.[String.length table - 1] = '\n') then
    Buffer.add_char buf '\n';
  (match r.sr_front with
  | [] -> Buffer.add_string buf "no feasible platform evaluated\n"
  | _ -> ());
  Buffer.contents buf
