type strategy = Generic | Specialized | Bare

type t = {
  soc : Soc.t;
  engine : Dma_engine.t;
  strategy : strategy;
  double_buffer : bool;
}

(* One-time cost of bringing up the DMA driver: opening /dev/mem,
   mmap-ing the input/output windows, first-touch page faults and
   descriptor-ring initialisation. Measured Linux userspace DMA stacks
   spend hundreds of microseconds here, which is what makes offload
   irrelevant for small problems (Fig. 10's crossover). *)
let init_cycles = 400_000.0

let strategy_to_string = function
  | Generic -> "generic"
  | Specialized -> "specialized"
  | Bare -> "bare"

let init ?(double_buffer = false) soc ~dma_id ~strategy =
  let engine = Soc.engine soc dma_id in
  Trace.begin_span soc.Soc.tracer ~cat:"init"
    ~args:
      [
        ("dma_id", Trace.Int dma_id);
        ("strategy", Trace.Str (strategy_to_string strategy));
        ("double_buffer", Trace.Bool double_buffer);
      ]
    "dma_init";
  Metrics.incr "runtime.dma_inits"
    ~labels:[ ("strategy", strategy_to_string strategy) ];
  soc.Soc.counters.cycles <- soc.Soc.counters.cycles +. init_cycles;
  Trace.end_span soc.Soc.tracer;
  { soc; engine; strategy; double_buffer }

let free t = t.soc.Soc.counters.cycles <- t.soc.Soc.counters.cycles +. 500.0

let soc t = t.soc
let strategy t = t.strategy
let engine t = t.engine

let stage_literal t literal ~offset =
  Soc.alu t.soc 1;
  Soc.uncached_store_words t.soc 1;
  Dma_engine.stage t.engine ~offset (Axi_word.Inst literal);
  offset + 1

(* ------------------------------------------------------------------ *)
(* Host-side copies                                                    *)
(* ------------------------------------------------------------------ *)

(* Generic rank-N element-wise copy: mirrors the recursive MemRef copy
   the paper describes (Sec. IV-B) — per element it reloads size/stride
   metadata, computes a strided address, loads the element through the
   cache and stores it to the uncached DMA region. *)
let generic_copy_out t view ~offset =
  let soc = t.soc in
  let cost = soc.Soc.cost in
  Soc.call_overhead soc;
  let off = ref offset in
  Memref_view.iter_linear view (fun li ->
      Soc.charge_l1_hits soc (int_of_float cost.Cost_model.memref_metadata_accesses);
      Soc.alu soc (int_of_float cost.Cost_model.elementwise_element_overhead_cycles);
      Soc.branch soc 1;
      let v = Soc.cached_read soc view.Memref_view.buf li in
      Soc.uncached_store_words soc 1;
      Dma_engine.stage t.engine ~offset:!off (Axi_word.Data v);
      incr off);
  !off

(* Specialised copy: memcpy each maximal contiguous run with vectorised
   loads; requires unit innermost stride (checked by the caller). *)
let specialized_copy_out t view ~offset =
  let soc = t.soc in
  let cost = soc.Soc.cost in
  let run = Memref_view.contiguous_run view in
  let chunk_elems = cost.Cost_model.vector_chunk_bytes / 4 in
  Soc.call_overhead soc;
  let off = ref offset in
  let run_pos = ref 0 in
  Memref_view.iter_linear view (fun li ->
      if !run_pos = 0 then begin
        (* Start of a run: one memcpy call covering [run] elements. *)
        soc.Soc.counters.cycles <-
          soc.Soc.counters.cycles +. cost.Cost_model.memcpy_row_setup_cycles;
        soc.Soc.counters.instructions <- soc.Soc.counters.instructions +. 6.0;
        Soc.branch soc 1;
        Soc.vector_read_range soc view.Memref_view.buf li run;
        Soc.branch soc (Util.ceil_div run (chunk_elems * 4));
        Soc.uncached_store_words soc run
      end;
      let v = Sim_memory.get view.Memref_view.buf li in
      Dma_engine.stage t.engine ~offset:!off (Axi_word.Data v);
      incr off;
      run_pos := (!run_pos + 1) mod run);
  !off

(* Bare strided loop over a C array: pointer bump + load + store, one
   branch per element; no descriptor traffic, no memcpy call setup. *)
let bare_copy_out t view ~offset =
  let soc = t.soc in
  Soc.call_overhead soc;
  let off = ref offset in
  Memref_view.iter_linear view (fun li ->
      Soc.alu soc 2;
      Soc.branch soc 1;
      let v = Soc.cached_read soc view.Memref_view.buf li in
      Soc.uncached_store_words soc 1;
      Dma_engine.stage t.engine ~offset:!off (Axi_word.Data v);
      incr off);
  !off

let bare_copy_in t view ~accumulate data =
  let soc = t.soc in
  Soc.call_overhead soc;
  let i = ref 0 in
  Memref_view.iter_linear view (fun li ->
      Soc.alu soc 2;
      Soc.branch soc 1;
      Soc.uncached_load_words soc 1;
      let v = data.(!i) in
      if accumulate then begin
        let old = Soc.cached_read soc view.Memref_view.buf li in
        Soc.fpu soc 1;
        Soc.cached_write soc view.Memref_view.buf li (old +. v)
      end
      else Soc.cached_write soc view.Memref_view.buf li v;
      incr i)

let can_specialize view =
  match List.rev view.Memref_view.strides with last :: _ -> last = 1 | [] -> true

let copy_to_dma_region_with t strategy view ~offset =
  Trace.with_span t.soc.Soc.tracer ~cat:"copy_to_accel"
    ~args:
      [
        ("words", Trace.Int (Memref_view.num_elements view));
        ("strategy", Trace.Str (strategy_to_string strategy));
      ]
    "copy_to_dma_region"
    (fun () ->
      let labels = [ ("strategy", strategy_to_string strategy) ] in
      Metrics.incr "runtime.copies" ~labels:(("dir", "to_accel") :: labels);
      Metrics.observe "runtime.copy_words"
        ~labels:(("dir", "to_accel") :: labels)
        (float_of_int (Memref_view.num_elements view));
      match strategy with
      | Generic -> generic_copy_out t view ~offset
      | Bare -> bare_copy_out t view ~offset
      | Specialized ->
        if can_specialize view then specialized_copy_out t view ~offset
        else generic_copy_out t view ~offset)

let copy_to_dma_region t view ~offset = copy_to_dma_region_with t t.strategy view ~offset

let flush_send t =
  if t.double_buffer then Dma_engine.send_staged_async t.engine
  else Dma_engine.send_staged t.engine

(* The residency fast path: the driver looked the tensor up in a
   device region and found it resident, so instead of staging + sending
   it only pays the lookup branch. *)
let skip_resident t ~words ~what =
  Soc.alu t.soc 2;
  Soc.branch t.soc 1;
  Metrics.incr "runtime.dma_words_skipped"
    ~by:(float_of_int words)
    ~labels:[ ("what", what) ];
  Dma_engine.note_skipped t.engine ~words ~what

(* Copies from the DMA output region back into a memref. [data] holds
   the received words in row-major order. *)
let generic_copy_in t view ~accumulate data =
  let soc = t.soc in
  let cost = soc.Soc.cost in
  Soc.call_overhead soc;
  let i = ref 0 in
  Memref_view.iter_linear view (fun li ->
      Soc.charge_l1_hits soc (int_of_float cost.Cost_model.memref_metadata_accesses);
      Soc.alu soc (int_of_float cost.Cost_model.elementwise_element_overhead_cycles);
      Soc.branch soc 1;
      Soc.uncached_load_words soc 1;
      let v = data.(!i) in
      if accumulate then begin
        let old = Soc.cached_read soc view.Memref_view.buf li in
        Soc.fpu soc 1;
        Soc.cached_write soc view.Memref_view.buf li (old +. v);
        (* the write hits the line just loaded *)
        soc.Soc.counters.cycles <- soc.Soc.counters.cycles -. 0.0
      end
      else Soc.cached_write soc view.Memref_view.buf li v;
      incr i)

let specialized_copy_in t view ~accumulate data =
  let soc = t.soc in
  let cost = soc.Soc.cost in
  let run = Memref_view.contiguous_run view in
  let chunk_elems = cost.Cost_model.vector_chunk_bytes / 4 in
  Soc.call_overhead soc;
  let i = ref 0 in
  let run_pos = ref 0 in
  Memref_view.iter_linear view (fun li ->
      if !run_pos = 0 then begin
        soc.Soc.counters.cycles <-
          soc.Soc.counters.cycles +. cost.Cost_model.memcpy_row_setup_cycles;
        soc.Soc.counters.instructions <- soc.Soc.counters.instructions +. 6.0;
        Soc.branch soc 1;
        Soc.uncached_load_words soc run;
        if accumulate then begin
          Soc.vector_read_range soc view.Memref_view.buf li run;
          (* vectorised adds: 4 lanes per FPU op *)
          let vadds = Util.ceil_div run chunk_elems in
          soc.Soc.counters.cycles <-
            soc.Soc.counters.cycles +. float_of_int vadds *. cost.Cost_model.fpu_cycles;
          soc.Soc.counters.flops <- soc.Soc.counters.flops +. float_of_int run
        end;
        Soc.vector_write_range soc view.Memref_view.buf li run;
        Soc.branch soc (Util.ceil_div run (chunk_elems * 4))
      end;
      let v = data.(!i) in
      let v = if accumulate then Sim_memory.get view.Memref_view.buf li +. v else v in
      Sim_memory.set view.Memref_view.buf li v;
      incr i;
      run_pos := (!run_pos + 1) mod run)

let copy_from_data_with t strategy view ~accumulate data =
  Trace.with_span t.soc.Soc.tracer ~cat:"copy_from_accel"
    ~args:
      [
        ("words", Trace.Int (Memref_view.num_elements view));
        ("strategy", Trace.Str (strategy_to_string strategy));
        ("accumulate", Trace.Bool accumulate);
      ]
    "copy_from_data"
    (fun () ->
      let labels = [ ("strategy", strategy_to_string strategy) ] in
      Metrics.incr "runtime.copies" ~labels:(("dir", "from_accel") :: labels);
      Metrics.observe "runtime.copy_words"
        ~labels:(("dir", "from_accel") :: labels)
        (float_of_int (Memref_view.num_elements view));
      match strategy with
      | Generic -> generic_copy_in t view ~accumulate data
      | Bare -> bare_copy_in t view ~accumulate data
      | Specialized ->
        if can_specialize view then specialized_copy_in t view ~accumulate data
        else generic_copy_in t view ~accumulate data)

let manual_strategy view =
  if can_specialize view && Memref_view.contiguous_run view >= 4 then Specialized else Bare

let recv_into t view ~accumulate =
  flush_send t;
  let n = Memref_view.num_elements view in
  Dma_engine.start_recv t.engine ~len_words:n;
  let data = Dma_engine.wait_recv t.engine in
  copy_from_data_with t t.strategy view ~accumulate data

let send_reset t =
  let offset = stage_literal t Isa.reset ~offset:0 in
  ignore offset;
  flush_send t

(* ------------------------------------------------------------------ *)
(* Non-blocking transfers                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Send_token of Dma_engine.token
  | Recv_token of {
      rt_token : Dma_engine.token;
      rt_view : Memref_view.t;
      rt_accumulate : bool;
      rt_strategy : strategy;
    }

let start_send t =
  Soc.call_overhead t.soc;
  Send_token (Dma_engine.start_send_token t.engine)

let start_recv t ?(strategy = t.strategy) view ~accumulate =
  Soc.call_overhead t.soc;
  let n = Memref_view.num_elements view in
  let tok = Dma_engine.start_recv_token t.engine ~len_words:n in
  Recv_token { rt_token = tok; rt_view = view; rt_accumulate = accumulate; rt_strategy = strategy }

let wait t token =
  Soc.call_overhead t.soc;
  match token with
  | Send_token tok -> ignore (Dma_engine.wait_token t.engine tok)
  | Recv_token { rt_token; rt_view; rt_accumulate; rt_strategy } ->
    let data = Dma_engine.wait_token t.engine rt_token in
    copy_from_data_with t rt_strategy rt_view ~accumulate:rt_accumulate data
