let dma_init = "dma_init"
let dma_free = "dma_free"
let stage_literal = "stage_literal"
let copy_to_dma_region = "copy_to_dma_region"
let dma_flush_send = "dma_flush_send"
let dma_start_recv = "dma_start_recv"
let dma_wait_recv = "dma_wait_recv"
let dma_start_send_async = "dma_start_send_async"
let dma_start_recv_async = "dma_start_recv_async"
let dma_start_recv_async_spec = "dma_start_recv_async_spec"
let dma_wait = "dma_wait"
let copy_from_dma_region = "copy_from_dma_region"
let copy_from_dma_region_accumulate = "copy_from_dma_region_accumulate"
let copy_to_dma_region_spec = "copy_to_dma_region_spec"
let copy_from_dma_region_spec = "copy_from_dma_region_spec"
let copy_from_dma_region_accumulate_spec = "copy_from_dma_region_accumulate_spec"

let all =
  [
    dma_init;
    dma_free;
    stage_literal;
    copy_to_dma_region;
    dma_flush_send;
    dma_start_recv;
    dma_wait_recv;
    dma_start_send_async;
    dma_start_recv_async;
    dma_start_recv_async_spec;
    dma_wait;
    copy_from_dma_region;
    copy_from_dma_region_accumulate;
    copy_to_dma_region_spec;
    copy_from_dma_region_spec;
    copy_from_dma_region_accumulate_spec;
  ]
