(** Symbol names of the DMA runtime library as seen from generated IR.

    [Lower_accel_to_runtime] emits [func.call]s to these names; the
    interpreter dispatches them onto {!Dma_library}. Keeping the table
    here gives both sides a single source of truth. *)

val dma_init : string  (* (id, inAddr, inSize, outAddr, outSize) -> () *)
val dma_free : string  (* () -> () *)
val stage_literal : string  (* (word i32, offset i32) -> i32 *)
val copy_to_dma_region : string  (* (memref, offset i32) -> i32 *)
val dma_flush_send : string  (* () -> (): start_send + wait over staged words *)
val dma_start_recv : string  (* (len i32) -> () *)
val dma_wait_recv : string  (* () -> () *)

(* Non-blocking halves (the double-buffering pass's output): start a
   background transfer and return an !accel.token; dma_wait consumes
   it. The recv variant carries the destination memref (and a [mode]
   attr on the call) so the wait can land the data. *)
val dma_start_send_async : string  (* () -> !accel.token *)
val dma_start_recv_async : string  (* (memref) -> !accel.token *)
val dma_start_recv_async_spec : string  (* specialised wait-time copy *)
val dma_wait : string  (* (!accel.token) -> () *)
val copy_from_dma_region : string  (* (memref, offset i32) -> i32, store mode *)
val copy_from_dma_region_accumulate : string  (* accumulate mode *)

(* "_spec" variants: the strided-copy specialisation of Sec. IV-B,
   selected by the Copy_specialization pass when the memref layout has a
   unit innermost stride. *)
val copy_to_dma_region_spec : string
val copy_from_dma_region_spec : string
val copy_from_dma_region_accumulate_spec : string

val all : string list
