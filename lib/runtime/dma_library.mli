(** The custom AXI DMA runtime library (paper Sec. III-A, Fig. 9).

    This is the layer the generated host code (and the hand-written
    baselines) call into:

    - {!init}/{!free}: one-time DMA engine setup ([mmap]ing the
      memory-mapped input/output regions);
    - {!stage_literal}/{!copy_to_dma_region}: stage opcode words and
      memref tiles into the input region at a word offset, returning
      the next free offset (the offset chaining of Fig. 6b that batches
      an opcode's actions into a single transfer);
    - {!flush_send}: [dma_start_send] + [dma_wait_send_completion] over
      everything staged;
    - {!recv_into}: flush any staged words, then
      [dma_start_recv] + wait and copy the accelerator's output back
      into a memref, optionally accumulating.

    Two host-side copy implementations are provided, selected by
    {!strategy}: the {e generic} rank-N element-wise copy (loads the
    memref struct's size/stride fields per element, one scalar cache
    access per element) and the {e specialised} copy of Sec. IV-B,
    which memcpys each maximal contiguous run with vectorised accesses
    (one cache reference per 16-byte chunk). The specialised copy
    requires a unit innermost stride and degrades gracefully — runs of
    length 1 (e.g. 1x1 convolution patches) pay the per-run setup for
    every element, reproducing the paper's fHW==1 slowdown. *)

type strategy =
  | Generic  (** always element-wise through the memref descriptor *)
  | Specialized  (** memcpy contiguous runs when the innermost stride is 1 *)
  | Bare
      (** a hand-written strided C loop over a bare array: no memref
          metadata loads and no per-run memcpy setup. This is what the
          manual baselines fall back to when runs are too short to
          vectorise (e.g. 1x1-convolution patches); generated code
          cannot use it — the compiler only has the generic and
          specialised library entry points. *)

type t

val strategy_to_string : strategy -> string

val init : ?double_buffer:bool -> Soc.t -> dma_id:int -> strategy:strategy -> t
(** Look up the DMA engine registered under [dma_id] and charge the
    one-time initialisation cost. With [double_buffer], flushes use the
    engine's asynchronous (ping-pong) sends, overlapping streaming with
    the host's preparation of the next tile (the paper's Sec. V
    double-buffering attribute). *)

val init_cycles : float
(** The one-time driver bring-up cost charged by {!init} (exposed so
    multi-kernel experiments can amortise it correctly). *)

val manual_strategy : Memref_view.t -> strategy
(** What a hand-written driver does for this view: [Specialized] when
    the contiguous runs are at least a vector chunk long, [Bare]
    otherwise. *)

val free : t -> unit
val soc : t -> Soc.t
val strategy : t -> strategy
val engine : t -> Dma_engine.t

val stage_literal : t -> int -> offset:int -> int
(** Stage one instruction word; returns [offset + 1]. *)

val copy_to_dma_region : t -> Memref_view.t -> offset:int -> int
(** Stage a tile's elements (row-major); returns the next offset. *)

val can_specialize : Memref_view.t -> bool
(** Whether the view's innermost stride is 1 (the specialisation
    precondition the Copy_specialization pass checks). *)

val copy_to_dma_region_with :
  t -> strategy -> Memref_view.t -> offset:int -> int
(** As {!copy_to_dma_region} with an explicit per-call strategy (used
    by the interpreter to honour the callee chosen at compile time). *)

val copy_from_data_with :
  t -> strategy -> Memref_view.t -> accumulate:bool -> float array -> unit
(** Copy already-received words into a view with an explicit strategy
    (the granular half of {!recv_into}). *)

val flush_send : t -> unit
(** Transmit everything staged since the last flush (no-op when nothing
    is staged). *)

val skip_resident : t -> words:int -> what:string -> unit
(** Account for a transfer the residency planner elided because the
    device region already holds the tensor: charges only the host-side
    residency check (two ALU ops and a branch), bumps the
    [runtime.dma_words_skipped] metric and leaves a marker on the DMA
    trace track via {!Dma_engine.note_skipped}. No DMA words move. *)

val recv_into : t -> Memref_view.t -> accumulate:bool -> unit
(** Flush staged words, receive [num_elements] words from the
    accelerator and copy them into the view ([+=] when
    [accumulate]). *)

val send_reset : t -> unit
(** Stage and flush the reset opcode ({!Isa.reset}) — the common
    [init_opcodes] flow. *)

(** {1 Non-blocking transfers}

    The library-level faces of [accel.start_send] / [accel.start_recv]
    / [accel.wait]: the host pays only a call and the DMA programming
    cost at start time; the transfer (and any accelerator compute it
    triggers) proceeds on the SoC {!Timeline}'s agents. *)

type token

val start_send : t -> token
(** Flush everything staged since the last flush as one background
    transfer. *)

val start_recv : t -> ?strategy:strategy -> Memref_view.t -> accumulate:bool -> token
(** Program a background receive of [num_elements view] words. The
    host-side copy into [view] happens at {!wait} time, with
    [strategy] (default: the library's). *)

val wait : t -> token -> unit
(** Synchronise with the transfer; for recv tokens, also copy the
    received words into the destination view. *)
