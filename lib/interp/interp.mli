(** Host-code interpreter: executes a module's functions against the
    simulated {!Soc}, so that the {e generated} driver code is what
    actually drives the DMA engines and accelerator models, and every
    interpreted operation charges the CPU cost model (arithmetic,
    branches, cache accesses, loop overhead).

    Two levels of the lowering are executable:
    - the [accel] dialect (ops dispatch straight onto {!Dma_library});
    - the runtime-call level ([func.call]s to the {!Runtime_abi}
      symbols, as produced by [Lower_accel_to_runtime]), where the
      ["_spec"] callees select the specialised copies chosen at compile
      time.

    Both levels must produce identical results and DMA traffic — an
    invariant the test suite checks.

    Multiple accelerators are supported: each [dma_init] (distinguished
    by its engine id, as in the paper's [dma_init_config]) creates or
    reselects the DMA library for that engine, so a module can drive,
    say, a MatMul engine and a Conv2D engine in one function. *)

type value =
  | I of int  (** index or i32 *)
  | F of float
  | M of Memref_view.t
  | T of Dma_library.token  (** an in-flight asynchronous transfer *)

exception Runtime_error of string

type t

val create : ?copy_strategy:Dma_library.strategy -> Soc.t -> Ir.op -> t
(** [create soc module_op]. [copy_strategy] selects the host-side copy
    implementation used when interpreting at the [accel]-dialect level
    (the runtime-call level encodes the choice in callee names).
    Default: [Generic]. *)

val invoke : t -> string -> value list -> value list
(** Call a function by name. Memref arguments must be bound to views of
    buffers allocated in the SoC's memory. Raises {!Runtime_error} on
    type/arity mismatches or protocol errors. *)

val try_invoke : t -> string -> value list -> (value list, string) result
(** As {!invoke}, but turns {!Runtime_error} (and the [Failure] /
    [Invalid_argument] raised by device models and views on malformed
    traffic) into [Error] — the form the differential fuzzer's oracle
    classifies as a crash. *)

val view_of_alloc : t -> Ir.value -> Memref_view.t option
(** Look up the view bound to a value in the last invocation (for
    tests inspecting allocations). *)
