type value = I of int | F of float | M of Memref_view.t | T of Dma_library.token

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type t = {
  soc : Soc.t;
  copy_strategy : Dma_library.strategy;
  funcs : (string, Ir.op) Hashtbl.t;
  libs : (int, Dma_library.t) Hashtbl.t;  (* one DMA library per engine id *)
  mutable current_lib : int option;  (* engine of the kernel being driven *)
  last_env : (int, value) Hashtbl.t;  (* retained for test inspection *)
}

let create ?(copy_strategy = Dma_library.Generic) soc module_op =
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (o : Ir.op) -> if Func.is_func o then Hashtbl.replace funcs (Func.name_of o) o)
    (Ir.module_body module_op);
  {
    soc;
    copy_strategy;
    funcs;
    libs = Hashtbl.create 4;
    current_lib = None;
    last_env = Hashtbl.create 64;
  }

let lib t =
  match t.current_lib with
  | Some id -> (
    match Hashtbl.find_opt t.libs id with
    | Some l -> l
    | None -> error "internal: missing DMA library for engine %d" id)
  | None -> error "DMA library used before dma_init"

let init_lib t ~double_buffer ~dma_id =
  (* One initialisation per engine; a later dma_init for the same id
     (e.g. a second kernel on the same accelerator) just reselects it. *)
  if not (Hashtbl.mem t.libs dma_id) then
    Hashtbl.replace t.libs dma_id
      (Dma_library.init ~double_buffer t.soc ~dma_id ~strategy:t.copy_strategy);
  t.current_lib <- Some dma_id

(* ------------------------------------------------------------------ *)
(* Environment                                                         *)
(* ------------------------------------------------------------------ *)

type frame = { env : (int, value) Hashtbl.t }

let bind frame (v : Ir.value) rtv = Hashtbl.replace frame.env v.vid rtv

let lookup frame (v : Ir.value) =
  match Hashtbl.find_opt frame.env v.vid with
  | Some rtv -> rtv
  | None -> error "use of unbound value %%v%d (of type %s)" v.vid (Ty.to_string v.vty)

let as_int frame v =
  match lookup frame v with
  | I n -> n
  | F _ | M _ | T _ -> error "expected an integer value"

let as_float frame v =
  match lookup frame v with
  | F f -> f
  | I _ | M _ | T _ -> error "expected a float value"

let as_view frame v =
  match lookup frame v with
  | M view -> view
  | I _ | F _ | T _ -> error "expected a memref value"

let as_token frame v =
  match lookup frame v with
  | T tok -> tok
  | I _ | F _ | M _ -> error "expected an !accel.token value"

(* ------------------------------------------------------------------ *)
(* Runtime-library call dispatch                                       *)
(* ------------------------------------------------------------------ *)

let double_buffer_of (o : Ir.op) =
  match Ir.attr o "double_buffer" with
  | Some (Attribute.Bool b) -> b
  | Some _ | None -> false

let runtime_call t frame (o : Ir.op) callee =
  let bind_result rtv =
    match o.Ir.results with
    | [] -> ()
    | [ r ] -> bind frame r rtv
    | _ -> error "runtime calls return at most one value"
  in
  let arg n = List.nth o.Ir.operands n in
  Metrics.incr "interp.runtime_calls" ~labels:[ ("callee", callee) ];
  (* No dispatch cost here: the library entry points account for their
     own call overhead, exactly as when the manual drivers call them. *)
  if callee = Runtime_abi.dma_init then
    init_lib t ~double_buffer:(double_buffer_of o) ~dma_id:(as_int frame (arg 0))
  else if callee = Runtime_abi.dma_free then Dma_library.free (lib t)
  else if callee = Runtime_abi.stage_literal then begin
    let word = as_int frame (arg 0) in
    let offset = as_int frame (arg 1) in
    bind_result (I (Dma_library.stage_literal (lib t) word ~offset))
  end
  else if callee = Runtime_abi.dma_flush_send then Dma_library.flush_send (lib t)
  else if callee = Runtime_abi.dma_start_recv then
    Dma_engine.start_recv (Dma_library.engine (lib t)) ~len_words:(as_int frame (arg 0))
  else if callee = Runtime_abi.dma_start_send_async then
    bind_result (T (Dma_library.start_send (lib t)))
  else if
    callee = Runtime_abi.dma_start_recv_async
    || callee = Runtime_abi.dma_start_recv_async_spec
  then begin
    let view = as_view frame (arg 0) in
    let accumulate =
      match Ir.attr o "mode" with Some (Attribute.Str "accumulate") -> true | _ -> false
    in
    let strategy =
      if callee = Runtime_abi.dma_start_recv_async_spec then Dma_library.Specialized
      else Dma_library.Generic
    in
    bind_result (T (Dma_library.start_recv (lib t) ~strategy view ~accumulate))
  end
  else if callee = Runtime_abi.dma_wait then
    Dma_library.wait (lib t) (as_token frame (arg 0))
  else if callee = Runtime_abi.dma_wait_recv then begin
    let data = Dma_engine.wait_recv (Dma_library.engine (lib t)) in
    (* Stash for the following copy_from call. *)
    Hashtbl.replace frame.env (-1) (M (Memref_view.of_buffer
      { Sim_memory.base = 0; data; label = "dma-recv" } [ Array.length data ]))
  end
  else if
    callee = Runtime_abi.copy_to_dma_region || callee = Runtime_abi.copy_to_dma_region_spec
  then begin
    let view = as_view frame (arg 0) in
    let offset = as_int frame (arg 1) in
    let strategy =
      if callee = Runtime_abi.copy_to_dma_region_spec then Dma_library.Specialized
      else Dma_library.Generic
    in
    bind_result (I (Dma_library.copy_to_dma_region_with (lib t) strategy view ~offset))
  end
  else if
    List.mem callee
      [
        Runtime_abi.copy_from_dma_region;
        Runtime_abi.copy_from_dma_region_accumulate;
        Runtime_abi.copy_from_dma_region_spec;
        Runtime_abi.copy_from_dma_region_accumulate_spec;
      ]
  then begin
    let view = as_view frame (arg 0) in
    let data =
      match Hashtbl.find_opt frame.env (-1) with
      | Some (M recv_view) -> recv_view.Memref_view.buf.Sim_memory.data
      | _ -> error "copy_from_dma_region without a preceding dma_wait_recv"
    in
    let accumulate =
      callee = Runtime_abi.copy_from_dma_region_accumulate
      || callee = Runtime_abi.copy_from_dma_region_accumulate_spec
    in
    let strategy =
      if
        callee = Runtime_abi.copy_from_dma_region_spec
        || callee = Runtime_abi.copy_from_dma_region_accumulate_spec
      then Dma_library.Specialized
      else Dma_library.Generic
    in
    Dma_library.copy_from_data_with (lib t) strategy view ~accumulate data;
    Hashtbl.remove frame.env (-1);
    bind_result (I 0)
  end
  else error "call to unknown runtime symbol %s" callee

(* ------------------------------------------------------------------ *)
(* Accel dialect execution                                             *)
(* ------------------------------------------------------------------ *)

let accel_op t frame (o : Ir.op) =
  let bind_result rtv =
    match o.Ir.results with [ r ] -> bind frame r rtv | _ -> ()
  in
  let arg n = List.nth o.Ir.operands n in
  let flush_after () = if Accel.is_flush o then Dma_library.flush_send (lib t) in
  match o.name with
  | "accel.dma_init" ->
    init_lib t ~double_buffer:(double_buffer_of o) ~dma_id:(as_int frame (arg 0))
  | "accel.dma_free" -> Dma_library.free (lib t)
  | "accel.sendLiteral" ->
    let word = as_int frame (arg 0) in
    let offset = as_int frame (arg 1) in
    bind_result (I (Dma_library.stage_literal (lib t) word ~offset));
    flush_after ()
  | "accel.sendDim" ->
    let extent = Accel.send_dim_extent o in
    let offset = as_int frame (arg 1) in
    bind_result (I (Dma_library.stage_literal (lib t) extent ~offset));
    flush_after ()
  | "accel.sendIdx" ->
    let idx = as_int frame (arg 0) in
    let offset = as_int frame (arg 1) in
    bind_result (I (Dma_library.stage_literal (lib t) idx ~offset));
    flush_after ()
  | "accel.send" ->
    let view = as_view frame (arg 0) in
    let offset = as_int frame (arg 1) in
    bind_result
      (I (Dma_library.copy_to_dma_region_with (lib t) t.copy_strategy view ~offset));
    flush_after ()
  | "accel.recv" ->
    let view = as_view frame (arg 0) in
    let accumulate = Accel.recv_mode_of o = Accel.Accumulate in
    Dma_library.flush_send (lib t);
    let n = Memref_view.num_elements view in
    Dma_engine.start_recv (Dma_library.engine (lib t)) ~len_words:n;
    let data = Dma_engine.wait_recv (Dma_library.engine (lib t)) in
    Dma_library.copy_from_data_with (lib t) t.copy_strategy view ~accumulate data;
    bind_result (I 0)
  | "accel.start_send" -> bind_result (T (Dma_library.start_send (lib t)))
  | "accel.start_recv" ->
    let view = as_view frame (arg 0) in
    let accumulate = Accel.recv_mode_of o = Accel.Accumulate in
    bind_result
      (T (Dma_library.start_recv (lib t) ~strategy:t.copy_strategy view ~accumulate))
  | "accel.wait" -> Dma_library.wait (lib t) (as_token frame (arg 0))
  | other -> error "unsupported accel op %s" other

(* ------------------------------------------------------------------ *)
(* Core execution                                                      *)
(* ------------------------------------------------------------------ *)

let rec exec_op t frame (o : Ir.op) =
  match o.name with
  | "arith.constant" -> (
    Soc.alu t.soc 1;
    match Ir.attr_exn o "value" with
    | Attribute.Int n -> bind frame (Ir.result o) (I n)
    | Attribute.Float f -> bind frame (Ir.result o) (F f)
    | Attribute.Bool b -> bind frame (Ir.result o) (I (if b then 1 else 0))
    | a -> error "invalid constant %s" (Attribute.to_string a))
  | "arith.addi" | "arith.subi" | "arith.muli" -> (
    Soc.alu t.soc 1;
    let a = as_int frame (List.nth o.operands 0) in
    let b = as_int frame (List.nth o.operands 1) in
    let r =
      match o.name with
      | "arith.addi" -> a + b
      | "arith.subi" -> a - b
      | _ -> a * b
    in
    bind frame (Ir.result o) (I r))
  | "arith.addf" | "arith.mulf" ->
    Soc.fpu t.soc 1;
    let a = as_float frame (List.nth o.operands 0) in
    let b = as_float frame (List.nth o.operands 1) in
    let r = if o.name = "arith.addf" then a +. b else a *. b in
    bind frame (Ir.result o) (F r)
  | "arith.index_cast" ->
    Soc.alu t.soc 1;
    bind frame (Ir.result o) (I (as_int frame (List.nth o.operands 0)))
  | "memref.alloc" ->
    let m = Ty.memref_of (Ir.result o).vty in
    let buf =
      Sim_memory.alloc t.soc.Soc.memory ~label:"alloc" (Ty.num_elements m)
    in
    Soc.alu t.soc 20;
    bind frame (Ir.result o) (M (Memref_view.of_buffer buf m.Ty.shape))
  | "memref.dealloc" -> Soc.alu t.soc 5
  | "memref.subview" ->
    let src = as_view frame (List.hd o.operands) in
    let offsets = List.map (as_int frame) (List.tl o.operands) in
    let sizes = Attribute.get_ints (Ir.attr_exn o "static_sizes") in
    Soc.alu t.soc (2 * List.length sizes);
    bind frame (Ir.result o) (M (Memref_view.subview src ~offsets ~sizes))
  | "memref.load" ->
    let view = as_view frame (List.hd o.operands) in
    let indices = List.map (as_int frame) (List.tl o.operands) in
    let li = Memref_view.linear_index view indices in
    let v = Soc.memref_scalar_access t.soc view.Memref_view.buf li in
    bind frame (Ir.result o) (F v)
  | "memref.store" -> (
    match o.operands with
    | value :: dst :: indices ->
      let view = as_view frame dst in
      let li = Memref_view.linear_index view (List.map (as_int frame) indices) in
      ignore (Soc.memref_scalar_access t.soc view.Memref_view.buf li);
      Sim_memory.set view.Memref_view.buf li (as_float frame value)
    | _ -> error "malformed memref.store")
  | "scf.for" -> (
    match o.operands with
    | [ lb; ub; step ] ->
      let lb = as_int frame lb and ub = as_int frame ub and step = as_int frame step in
      if step <= 0 then error "scf.for with non-positive step %d" step;
      let block = Ir.single_block o in
      let iv = match block.bargs with [ iv ] -> iv | _ -> error "malformed scf.for" in
      let i = ref lb in
      while !i < ub do
        Soc.loop_iteration t.soc;
        bind frame iv (I !i);
        List.iter (exec_op t frame) block.body;
        i := !i + step
      done
    | _ -> error "malformed scf.for")
  | "scf.yield" -> ()
  | "func.call" -> (
    let callee =
      match Ir.attr o "callee" with
      | Some (Attribute.Str s) -> s
      | _ -> error "func.call without callee"
    in
    if List.mem callee Runtime_abi.all then runtime_call t frame o callee
    else
      match Hashtbl.find_opt t.funcs callee with
      | Some f ->
        Soc.call_overhead t.soc;
        let args = List.map (lookup frame) o.operands in
        let results = exec_func t f args in
        List.iter2 (bind frame) o.results results
      | None -> error "call to undefined function %s" callee)
  | "func.return" -> ()
  | name when Accel.is_accel o -> (ignore name; accel_op t frame o)
  | "linalg.generic" ->
    error "linalg.generic reached the interpreter: run a lowering pipeline first"
  | other -> error "unsupported operation %s" other

and exec_func t (f : Ir.op) args =
  let block = Func.body_of f in
  if List.length block.bargs <> List.length args then
    error "function %s expects %d arguments, got %d" (Func.name_of f)
      (List.length block.bargs) (List.length args);
  let frame = { env = Hashtbl.create 64 } in
  List.iter2 (bind frame) block.bargs args;
  Trace.with_span t.soc.Soc.tracer ~cat:"interp"
    ~args:[ ("n_ops", Trace.Int (List.length block.body)) ]
    ("func " ^ Func.name_of f)
    (fun () -> List.iter (exec_op t frame) block.body);
  let results =
    match List.rev block.body with
    | last :: _ when last.Ir.name = "func.return" -> List.map (lookup frame) last.operands
    | _ -> []
  in
  (* Retain the outermost frame's bindings for test inspection. *)
  Hashtbl.reset t.last_env;
  Hashtbl.iter (Hashtbl.replace t.last_env) frame.env;
  results

let invoke t name args =
  match Hashtbl.find_opt t.funcs name with
  | Some f ->
    Metrics.incr "interp.invocations" ~labels:[ ("func", name) ];
    exec_func t f args
  | None -> error "no function named %s" name

(* Structured execution for harnesses (the differential fuzzer): any
   interpreter, runtime-library or simulated-device error comes back as
   [Error message] instead of escaping as an exception. *)
let try_invoke t name args =
  match invoke t name args with
  | results -> Ok results
  | exception Runtime_error msg -> Error ("interpreter: " ^ msg)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let view_of_alloc t (v : Ir.value) =
  match Hashtbl.find_opt t.last_env v.vid with Some (M view) -> Some view | _ -> None
