let generic_name = "linalg.generic"
let yield_name = "linalg.yield"

let parallel = "parallel"
let reduction = "reduction"

let yield b values = Builder.emit b (Ir.op yield_name ~operands:values)

let elem_value (v : Ir.value) = Ir.fresh_value (Ty.Scalar (Ty.memref_of v.vty).elem)

let generic b ~indexing_maps ~iterator_types ~inputs ~outputs ?op_kind kernel =
  let operands = inputs @ outputs in
  if List.length indexing_maps <> List.length operands then
    invalid_arg "Linalg.generic: one indexing map per operand is required";
  let block_args = List.map elem_value operands in
  let kb = Builder.create () in
  kernel kb block_args;
  let body = Builder.finish kb in
  let attrs =
    [
      ( "indexing_maps",
        Attribute.Array (List.map (fun m -> Attribute.Affine m) indexing_maps) );
      ("iterator_types", Attribute.Strs iterator_types);
      ("ins", Attribute.Int (List.length inputs));
    ]
    @ match op_kind with None -> [] | Some k -> [ ("op_kind", Attribute.Str k) ]
  in
  let op =
    Ir.op generic_name ~operands ~attrs
      ~regions:[ [ Ir.block ~args:block_args body ] ]
  in
  Builder.emit b op;
  op

let matmul b ~a ~b:bv ~c =
  let maps =
    [
      Affine_map.projection ~n_dims:3 [ 0; 2 ];
      Affine_map.projection ~n_dims:3 [ 2; 1 ];
      Affine_map.projection ~n_dims:3 [ 0; 1 ];
    ]
  in
  generic b ~indexing_maps:maps
    ~iterator_types:[ parallel; parallel; reduction ]
    ~inputs:[ a; bv ] ~outputs:[ c ] ~op_kind:"matmul"
    (fun kb args ->
      match args with
      | [ ae; be; ce ] ->
        let prod = Arith.mulf kb ae be in
        let sum = Arith.addf kb ce prod in
        yield kb [ sum ]
      | _ -> assert false)

(* Iteration space (n, f, oh, ow, c, fh, fw):
     I -> (n, c, s*oh + fh, s*ow + fw); W -> (f, c, fh, fw); O -> (n, f, oh, ow) *)
let conv_2d_nchw_fchw ?(stride = 1) b ~input ~filter ~output =
  let open Affine_map in
  let n = 7 in
  let spatial d = if stride = 1 then Dim d else Mul (Cst stride, Dim d) in
  let input_map =
    make ~n_dims:n [ Dim 0; Dim 4; Add (spatial 2, Dim 5); Add (spatial 3, Dim 6) ]
  in
  let filter_map = projection ~n_dims:n [ 1; 4; 5; 6 ] in
  let output_map = projection ~n_dims:n [ 0; 1; 2; 3 ] in
  generic b
    ~indexing_maps:[ input_map; filter_map; output_map ]
    ~iterator_types:[ parallel; parallel; parallel; parallel; reduction; reduction; reduction ]
    ~inputs:[ input; filter ] ~outputs:[ output ] ~op_kind:"conv_2d_nchw_fchw"
    (fun kb args ->
      match args with
      | [ ie; we; oe ] ->
        let prod = Arith.mulf kb ie we in
        let sum = Arith.addf kb oe prod in
        yield kb [ sum ]
      | _ -> assert false)

let spatial_stride = function
  | Affine_map.Add (Affine_map.Dim _, Affine_map.Dim _) -> Some 1
  | Affine_map.Add (Affine_map.Mul (Affine_map.Cst s, Affine_map.Dim _), Affine_map.Dim _)
    when s > 0 ->
    Some s
  | _ -> None

let conv_stride_of (o : Ir.op) =
  if o.name <> generic_name then None
  else
    match Ir.attr o "indexing_maps" with
    | Some (Attribute.Array (Attribute.Affine im :: _)) -> (
      match im.Affine_map.exprs with
      | [ Affine_map.Dim 0; Affine_map.Dim 4; e2; e3 ] -> (
        match (spatial_stride e2, spatial_stride e3) with
        | Some a, Some b when a = b -> Some a
        | _ -> None)
      | _ -> None)
    | _ -> None

let is_generic (o : Ir.op) = o.name = generic_name

let indexing_maps o =
  List.map Attribute.get_affine (Attribute.get_array (Ir.attr_exn o "indexing_maps"))

let iterator_types o = Attribute.get_strs (Ir.attr_exn o "iterator_types")

let num_inputs o = Attribute.get_int (Ir.attr_exn o "ins")

let inputs (o : Ir.op) = Util.list_take (num_inputs o) o.operands
let outputs (o : Ir.op) = Util.list_drop (num_inputs o) o.operands

let op_kind o =
  match Ir.attr o "op_kind" with Some (Attribute.Str k) -> Some k | _ -> None

let loop_ranges (o : Ir.op) =
  let maps = indexing_maps o in
  let n_dims =
    match maps with m :: _ -> m.Affine_map.n_dims | [] -> 0
  in
  let extents = Array.make n_dims (-1) in
  List.iter2
    (fun map (operand : Ir.value) ->
      let shape = (Ty.memref_of operand.vty).shape in
      List.iteri
        (fun pos expr ->
          match expr with
          | Affine_map.Dim d -> extents.(d) <- List.nth shape pos
          | Affine_map.Cst _ | Affine_map.Add _ | Affine_map.Mul _ -> ())
        map.Affine_map.exprs)
    maps o.operands;
  Array.iteri
    (fun d e ->
      if e < 0 then
        invalid_arg (Printf.sprintf "Linalg.loop_ranges: cannot infer extent of d%d" d))
    extents;
  Array.to_list extents

let verify_generic (o : Ir.op) =
  match (Ir.attr o "indexing_maps", Ir.attr o "iterator_types", Ir.attr o "ins") with
  | Some (Attribute.Array maps), Some (Attribute.Strs iters), Some (Attribute.Int ins) ->
    let maps = List.map Attribute.get_affine maps in
    if List.length maps <> List.length o.operands then
      Error "one indexing map per operand is required"
    else if ins < 0 || ins > List.length o.operands then
      Error "invalid ins count"
    else if
      not
        (List.for_all
           (fun (m : Affine_map.t) -> m.n_dims = List.length iters)
           maps)
    then Error "indexing map dimensionality must match iterator_types"
    else if
      not
        (List.for_all (fun it -> it = parallel || it = reduction) iters)
    then Error "iterator types must be parallel or reduction"
    else if
      not
        (List.for_all2
           (fun (m : Affine_map.t) (v : Ir.value) ->
             match v.vty with
             | Ty.Memref mr -> Affine_map.n_results m = Ty.rank mr
             | Ty.Scalar _ | Ty.Func _ | Ty.Token -> false)
           maps o.operands)
    then Error "indexing map results must match operand memref ranks"
    else begin
      let block = Ir.single_block o in
      if List.length block.bargs <> List.length o.operands then
        Error "kernel must have one block argument per operand"
      else begin
        match List.rev block.body with
        | last :: _ when last.Ir.name = yield_name ->
          if List.length last.Ir.operands = List.length o.operands - ins then Ok ()
          else Error "linalg.yield must yield one value per output"
        | _ -> Error "kernel must end with linalg.yield"
      end
    end
  | _ -> Error "missing indexing_maps, iterator_types or ins attribute"

let registered = lazy (Verifier.register_op_verifier generic_name verify_generic)
let register () = Lazy.force registered
