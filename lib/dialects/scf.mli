(** The [scf] dialect: structured control flow ([scf.for] loops). *)

val for_name : string
(** ["scf.for"] *)

val yield_name : string
(** ["scf.yield"] *)

val for_ :
  Builder.t ->
  lb:Ir.value ->
  ub:Ir.value ->
  step:Ir.value ->
  (Builder.t -> Ir.value -> unit) ->
  unit
(** Emit [scf.for %iv = %lb to %ub step %step { ... }]. The callback
    receives the induction variable; a terminating [scf.yield] is
    appended automatically. *)

val for_range :
  Builder.t -> lb:int -> ub:int -> step:int -> (Builder.t -> Ir.value -> unit) -> unit
(** {!for_} over constant bounds; emits the [arith.constant]s. *)

val induction_var : Ir.op -> Ir.value
(** The induction variable of an [scf.for]. *)

val loop_body : Ir.op -> Ir.op list
(** Body ops of an [scf.for], excluding the terminating [scf.yield]. *)

val static_bounds : Ir.op -> Ir.op -> (int * int * int) option
(** [static_bounds func_op for_op]: (lb, ub, step) when all three loop
    operands are [arith.constant]s defined in the function. *)

val register : unit -> unit
