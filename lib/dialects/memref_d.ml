let alloc b ty =
  (match ty with
  | Ty.Memref m when Ty.is_identity_layout m -> ()
  | Ty.Memref _ -> invalid_arg "Memref_d.alloc: layout must be identity"
  | Ty.Scalar _ | Ty.Func _ | Ty.Token -> invalid_arg "Memref_d.alloc: not a memref type");
  Builder.emit_result b (Ir.op "memref.alloc" ~results:[ Ir.fresh_value ty ])

let dealloc b v = Builder.emit b (Ir.op "memref.dealloc" ~operands:[ v ])

let subview b src ~offsets ~sizes =
  let m = Ty.memref_of src.Ir.vty in
  if List.length offsets <> Ty.rank m || List.length sizes <> Ty.rank m then
    invalid_arg "Memref_d.subview: offsets/sizes rank mismatch";
  let result_ty = Ty.dynamic_subview_type m ~sizes in
  Builder.emit_result b
    (Ir.op "memref.subview"
       ~operands:(src :: offsets)
       ~results:[ Ir.fresh_value result_ty ]
       ~attrs:
         [
           ("static_sizes", Attribute.Ints sizes);
           ("static_strides", Attribute.Ints (List.map (fun _ -> 1) sizes));
         ])

let load b src indices =
  let m = Ty.memref_of src.Ir.vty in
  if List.length indices <> Ty.rank m then invalid_arg "Memref_d.load: index rank mismatch";
  Builder.emit_result b
    (Ir.op "memref.load" ~operands:(src :: indices)
       ~results:[ Ir.fresh_value (Ty.Scalar m.elem) ])

let store b value dst indices =
  let m = Ty.memref_of dst.Ir.vty in
  if List.length indices <> Ty.rank m then invalid_arg "Memref_d.store: index rank mismatch";
  if not (Ty.equal value.Ir.vty (Ty.Scalar m.elem)) then
    invalid_arg "Memref_d.store: value type does not match element type";
  Builder.emit b (Ir.op "memref.store" ~operands:(value :: dst :: indices))

let dim_size v d =
  let m = Ty.memref_of v.Ir.vty in
  match List.nth_opt m.shape d with
  | Some extent -> extent
  | None -> invalid_arg (Printf.sprintf "Memref_d.dim_size: dimension %d out of range" d)

let is_index (v : Ir.value) = Ty.equal v.vty Ty.index

let verify_subview (o : Ir.op) =
  match (o.operands, o.results) with
  | src :: offsets, [ r ] -> (
    match (src.Ir.vty, r.Ir.vty) with
    | Ty.Memref m, Ty.Memref rm ->
      let rank = Ty.rank m in
      if List.length offsets <> rank then Error "expected one offset per dimension"
      else if not (List.for_all is_index offsets) then Error "offsets must be index-typed"
      else if List.length rm.shape <> rank then Error "result rank must match source rank"
      else if rm.strides <> m.strides then Error "result must inherit source strides"
      else Ok ()
    | _ -> Error "source and result must be memrefs")
  | _ -> Error "expected a source memref, offsets, and one result"

let verify_load (o : Ir.op) =
  match (o.operands, o.results) with
  | src :: indices, [ r ] -> (
    match src.Ir.vty with
    | Ty.Memref m ->
      if List.length indices <> Ty.rank m then Error "expected one index per dimension"
      else if not (List.for_all is_index indices) then Error "indices must be index-typed"
      else if not (Ty.equal r.Ir.vty (Ty.Scalar m.elem)) then
        Error "result type must be the element type"
      else Ok ()
    | _ -> Error "source must be a memref")
  | _ -> Error "expected a source memref, indices, and one result"

let verify_store (o : Ir.op) =
  match o.operands with
  | value :: dst :: indices -> (
    match dst.Ir.vty with
    | Ty.Memref m ->
      if List.length indices <> Ty.rank m then Error "expected one index per dimension"
      else if not (List.for_all is_index indices) then Error "indices must be index-typed"
      else if not (Ty.equal value.Ir.vty (Ty.Scalar m.elem)) then
        Error "stored value type must be the element type"
      else Ok ()
    | _ -> Error "destination must be a memref")
  | _ -> Error "expected a value, a destination memref, and indices"

let verify_alloc (o : Ir.op) =
  match o.results with
  | [ r ] -> (
    match r.Ir.vty with
    | Ty.Memref m when Ty.is_identity_layout m -> Ok ()
    | Ty.Memref _ -> Error "alloc result must have identity layout"
    | _ -> Error "alloc result must be a memref")
  | _ -> Error "alloc must have exactly one result"

let registered =
  lazy
    (Verifier.register_op_verifier "memref.subview" verify_subview;
     Verifier.register_op_verifier "memref.load" verify_load;
     Verifier.register_op_verifier "memref.store" verify_store;
     Verifier.register_op_verifier "memref.alloc" verify_alloc)

let register () = Lazy.force registered
