let dma_init_name = "accel.dma_init"
let dma_free_name = "accel.dma_free"
let send_literal_name = "accel.sendLiteral"
let send_name = "accel.send"
let send_dim_name = "accel.sendDim"
let send_idx_name = "accel.sendIdx"
let recv_name = "accel.recv"
let start_send_name = "accel.start_send"
let start_recv_name = "accel.start_recv"
let wait_name = "accel.wait"

let op_names =
  [
    dma_init_name;
    dma_free_name;
    send_literal_name;
    send_name;
    send_dim_name;
    send_idx_name;
    recv_name;
    start_send_name;
    start_recv_name;
    wait_name;
  ]

let flush_attr flush = if flush then [ ("flush", Attribute.Bool true) ] else []

let dma_init b ~dma_id ~input_address ~input_buffer_size ~output_address
    ~output_buffer_size =
  let operands =
    List.map (Arith.constant_i32 b)
      [ dma_id; input_address; input_buffer_size; output_address; output_buffer_size ]
  in
  Builder.emit b (Ir.op dma_init_name ~operands)

let dma_free b = Builder.emit b (Ir.op dma_free_name)

let offset_result () = Ir.fresh_value Ty.i32

let send_literal ?(flush = false) b ~literal ~offset =
  Builder.emit_result b
    (Ir.op send_literal_name ~operands:[ literal; offset ]
       ~results:[ offset_result () ] ~attrs:(flush_attr flush))

let send ?(flush = true) b ~src ~offset =
  Builder.emit_result b
    (Ir.op send_name ~operands:[ src; offset ] ~results:[ offset_result () ]
       ~attrs:(flush_attr flush))

let send_dim ?(flush = false) ?static_extent b ~src ~dim ~offset =
  let extent_attr =
    match static_extent with
    | None -> []
    | Some e -> [ ("static_extent", Attribute.Int e) ]
  in
  Builder.emit_result b
    (Ir.op send_dim_name ~operands:[ src; offset ] ~results:[ offset_result () ]
       ~attrs:((("dim", Attribute.Int dim) :: extent_attr) @ flush_attr flush))

let send_idx ?(flush = false) b ~idx ~offset =
  Builder.emit_result b
    (Ir.op send_idx_name ~operands:[ idx; offset ] ~results:[ offset_result () ]
       ~attrs:(flush_attr flush))

type recv_mode = Store | Accumulate

let mode_string = function Store -> "store" | Accumulate -> "accumulate"

let recv b ~mode ~dst ~offset =
  Builder.emit_result b
    (Ir.op recv_name ~operands:[ dst; offset ] ~results:[ offset_result () ]
       ~attrs:[ ("mode", Attribute.Str (mode_string mode)) ])

(* Non-blocking halves: [start_send] flushes everything staged since
   the last flush as one background transfer; [start_recv] programs a
   background receive into [dst]; both return an [!accel.token] that a
   later [wait] consumes (exactly once — the verifier enforces it). *)
let start_send b =
  Builder.emit_result b (Ir.op start_send_name ~results:[ Ir.fresh_value Ty.token ])

let start_recv b ~mode ~dst =
  Builder.emit_result b
    (Ir.op start_recv_name ~operands:[ dst ]
       ~results:[ Ir.fresh_value Ty.token ]
       ~attrs:[ ("mode", Attribute.Str (mode_string mode)) ])

let wait b ~token = Builder.emit b (Ir.op wait_name ~operands:[ token ])

let recv_mode_of (o : Ir.op) =
  match Ir.attr o "mode" with
  | Some (Attribute.Str "accumulate") -> Accumulate
  | Some (Attribute.Str "store") | None -> Store
  | Some a ->
    invalid_arg
      (Printf.sprintf "Accel.recv_mode_of: invalid mode %s" (Attribute.to_string a))

let is_flush (o : Ir.op) =
  match Ir.attr o "flush" with Some (Attribute.Bool b) -> b | _ -> false

let is_accel (o : Ir.op) = List.mem o.name op_names

let is_i32 (v : Ir.value) = Ty.equal v.vty Ty.i32
let is_memref (v : Ir.value) = match v.vty with Ty.Memref _ -> true | _ -> false

let verify_dma_init (o : Ir.op) =
  if List.length o.operands = 5 && List.for_all is_i32 o.operands then Ok ()
  else Error "dma_init requires five i32 operands"

let verify_offset_chain ~data (o : Ir.op) =
  match (o.operands, o.results) with
  | [ first; offset ], [ r ] ->
    if not (is_i32 offset) then Error "offset operand must be i32"
    else if not (is_i32 r) then Error "result offset must be i32"
    else if data && not (is_memref first) then Error "payload operand must be a memref"
    else if (not data) && not (is_i32 first || Ty.equal first.Ir.vty Ty.index) then
      Error "scalar payload must be i32 or index"
    else Ok ()
  | _ -> Error "expected (payload, offset) operands and one offset result"

let is_token (v : Ir.value) = Ty.equal v.Ir.vty Ty.token

let verify_start_send (o : Ir.op) =
  match (o.operands, o.results) with
  | [], [ r ] when is_token r -> Ok ()
  | _ -> Error "start_send takes no operands and returns one !accel.token"

let verify_start_recv (o : Ir.op) =
  match (o.operands, o.results) with
  | [ dst ], [ r ] when is_memref dst && is_token r -> Ok ()
  | _ -> Error "start_recv requires one memref operand and one !accel.token result"

let verify_wait (o : Ir.op) =
  match (o.operands, o.results) with
  | [ tok ], [] when is_token tok -> Ok ()
  | _ -> Error "wait consumes exactly one !accel.token and returns nothing"

let registered =
  lazy
    (Verifier.register_op_verifier dma_init_name verify_dma_init;
     Verifier.register_op_verifier send_name (verify_offset_chain ~data:true);
     Verifier.register_op_verifier recv_name (verify_offset_chain ~data:true);
     Verifier.register_op_verifier send_literal_name (verify_offset_chain ~data:false);
     Verifier.register_op_verifier send_dim_name (verify_offset_chain ~data:true);
     Verifier.register_op_verifier send_idx_name (verify_offset_chain ~data:false);
     Verifier.register_op_verifier start_send_name verify_start_send;
     Verifier.register_op_verifier start_recv_name verify_start_recv;
     Verifier.register_op_verifier wait_name verify_wait)

let register () = Lazy.force registered

let send_dim_extent (o : Ir.op) =
  match Ir.attr o "static_extent" with
  | Some (Attribute.Int e) -> e
  | Some _ | None -> (
    match o.operands with
    | src :: _ -> (
      let m = Ty.memref_of src.Ir.vty in
      let dim =
        match Ir.attr o "dim" with
        | Some (Attribute.Int d) -> d
        | Some _ | None -> invalid_arg "accel.sendDim: missing dim attribute"
      in
      match List.nth_opt m.Ty.shape dim with
      | Some e -> e
      | None -> invalid_arg "accel.sendDim: dim out of range")
    | [] -> invalid_arg "accel.sendDim: missing operand")
