(** The [accel] dialect (paper Sec. III-C, Fig. 9): operations that
    abstract host–accelerator transactions — DMA initialisation, staged
    sends into the DMA memory-mapped region, and receives.

    Offsets are [i32] values measured in 32-bit words within the DMA
    region. Send-like ops {e stage} their payload at the given offset
    and return the next free offset; the op that carries
    [flush = true] additionally programs the DMA engine to transmit
    everything staged so far (one [dma_start_send]/[dma_wait] pair),
    which is how the paper batches an opcode's actions into a single
    transfer. [accel.recv] first waits for the accelerator's output and
    then copies it back into a memref, accumulating when
    [mode = "accumulate"]. *)

val dma_init :
  Builder.t ->
  dma_id:int ->
  input_address:int ->
  input_buffer_size:int ->
  output_address:int ->
  output_buffer_size:int ->
  unit
(** [accel.dma_init] with five constant operands (Fig. 6a's
    [dma_init_config] values). Emits the needed [arith.constant]s. *)

val dma_free : Builder.t -> unit

val send_literal : ?flush:bool -> Builder.t -> literal:Ir.value -> offset:Ir.value -> Ir.value
(** [accel.sendLiteral(%lit, %offset) : i32, i32 -> i32]. *)

val send : ?flush:bool -> Builder.t -> src:Ir.value -> offset:Ir.value -> Ir.value
(** [accel.send(%tile, %offset) : memref, i32 -> i32]. Copies the tile
    into the DMA region. Defaults to [flush:true] — a data send ends an
    opcode's staging batch unless stated otherwise. *)

val send_dim :
  ?flush:bool ->
  ?static_extent:int ->
  Builder.t ->
  src:Ir.value ->
  dim:int ->
  offset:Ir.value ->
  Ir.value
(** [accel.sendDim]: stage the extent of dimension [dim] of [src].
    [static_extent] records the compiler-resolved tile extent when it
    differs from the full memref extent (e.g. runtime-configurable tile
    sizes sent at kernel initialisation); execution prefers it over the
    operand's type. *)

val send_dim_extent : Ir.op -> int
(** The extent an [accel.sendDim] transmits: [static_extent] when
    present, otherwise the operand memref's extent at [dim]. *)

val send_idx : ?flush:bool -> Builder.t -> idx:Ir.value -> offset:Ir.value -> Ir.value
(** [accel.sendIdx]: stage the value of a loop index. *)

type recv_mode = Store | Accumulate

val recv : Builder.t -> mode:recv_mode -> dst:Ir.value -> offset:Ir.value -> Ir.value
(** [accel.recv {mode}(%tile, %offset) : memref, i32 -> i32]. *)

(** {1 Non-blocking transfers}

    The asynchronous halves the double-buffering pass emits:
    [start_send] flushes everything staged since the last flush as one
    background transfer (so staging ops before it carry
    [flush = false]); [start_recv] programs a background receive into a
    memref. Both return an [!accel.token]; [wait] consumes it. The
    verifier requires every token to be waited exactly once. *)

val start_send : Builder.t -> Ir.value
(** [%t = accel.start_send() : () -> !accel.token]. *)

val start_recv : Builder.t -> mode:recv_mode -> dst:Ir.value -> Ir.value
(** [%t = accel.start_recv {mode}(%tile) : memref -> !accel.token]. *)

val wait : Builder.t -> token:Ir.value -> unit
(** [accel.wait(%t)]: synchronise the host with the transfer; for
    recv tokens this is when the data lands in the destination. *)

val recv_mode_of : Ir.op -> recv_mode
val is_flush : Ir.op -> bool
val is_accel : Ir.op -> bool

val op_names : string list
(** All accel op names (for matching in passes). *)

val dma_init_name : string
val recv_name : string
val start_send_name : string
val start_recv_name : string
val wait_name : string

val register : unit -> unit
