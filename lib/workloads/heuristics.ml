type choice = {
  flow : string;
  tm : int;
  tn : int;
  tk : int;
  predicted_cycles : float;
  predicted_transfer_elems : float;
}

let f = float_of_int

(* Tile-transfer counts per flow (v3/v4 opcode structure):
   how many times each operand tile crosses the bus. *)
let tile_counts ~flow ~mt ~nt ~kt =
  match flow with
  | "Ns" ->
    (* every tile every innermost iteration *)
    (mt * nt * kt, mt * nt * kt, mt * nt * kt)
  | "As" -> (mt * kt, mt * nt * kt, mt * nt * kt)
  | "Bs" -> (mt * nt * kt, kt * nt, mt * nt * kt)
  | "Cs" -> (mt * nt * kt, mt * nt * kt, mt * nt)
  | other -> failwith (Printf.sprintf "Heuristics: unknown flow %s" other)

let transfer_elems ~flow ~m ~n ~k ~tm ~tn ~tk =
  let mt = m / tm and nt = n / tn and kt = k / tk in
  let a_sends, b_sends, c_recvs = tile_counts ~flow ~mt ~nt ~kt in
  f (a_sends * tm * tk) +. f (b_sends * tk * tn) +. f (c_recvs * tm * tn)

let estimate_cycles (config : Accel_config.t) ~(cost : Cost_model.t) ~flow ~m ~n ~k ~tm
    ~tn ~tk =
  let mt = m / tm and nt = n / tn and kt = k / tk in
  let a_sends, b_sends, c_recvs = tile_counts ~flow ~mt ~nt ~kt in
  let inner_iters = mt * nt * kt in
  let per_word = Cost_model.cpu_cycles_per_word cost in
  let txn words = cost.dma_program_cycles +. cost.dma_wait_cycles +. (f words *. per_word) in
  (* specialised copy: vector chunks on the cached side, uncached words
     on the region side, one memcpy setup per row *)
  let copy_out elems run =
    let rows = elems / max run 1 in
    (f elems *. ((0.25 *. cost.l1_hit_cycles) +. cost.uncached_store_cycles))
    +. (f rows *. cost.memcpy_row_setup_cycles)
  in
  let copy_in elems run =
    let rows = elems / max run 1 in
    (f elems *. (cost.uncached_load_cycles +. (0.5 *. cost.l1_hit_cycles) +. 0.5))
    +. (f rows *. cost.memcpy_row_setup_cycles)
  in
  let a_elems = tm * tk and b_elems = tk * tn and c_elems = tm * tn in
  let send_cost sends elems run = f sends *. (txn (elems + 1) +. copy_out elems run) in
  let recv_cost recvs elems run =
    (* the drain opcode: one literal-only send transaction + the
       receive transaction + the accumulate copy *)
    f recvs *. (txn 1 +. txn elems +. copy_in elems run)
  in
  (* compute trigger transactions: one per innermost iteration for
     split-compute engines *)
  let compute_txns = f inner_iters *. txn 1 in
  let compute_cycles =
    Cost_model.accel_to_cpu_cycles cost
      (2.0 *. f (tm * tn * tk) /. config.ops_per_cycle)
    *. f inner_iters
  in
  (* accelerator compute overlaps staging of the next tiles; only a
     fraction is exposed on the critical path *)
  let exposed_compute = 0.5 *. compute_cycles in
  send_cost a_sends a_elems tk
  +. send_cost b_sends b_elems tn
  +. recv_cost c_recvs c_elems tn
  +. compute_txns +. exposed_compute
  +. (f inner_iters *. 12.0)

(* Conv service-time proxy: the engine has no tiling space to search
   (one weight slice, one patch per output element), so ranking-level
   predictions use a calibrated cycles-per-MAC constant instead of the
   matmul transfer model above.

   Derivation: under the Os flow every output element costs one full
   patch transfer of iC*fHW*fHW words — exactly one bus word per MAC —
   and on the default PYNQ-Z2 cost model a staged patch word costs
   ~14-16 host cycles (cached load + uncached store + per-element copy
   overhead + its share of the per-transaction DMA program/wait), while
   the MAC itself is amortised to well under a cycle by the 64-wide
   array. The constant is pinned by the "conv-proxy-calibration"
   regression test against the measured pipeline on a row-sampled
   ResNet-18 layer, so graph-level SJF/residency predictions cannot
   silently drift away from the simulator. *)
let conv_cycles_per_mac = 16.0

let estimate_conv_cycles ~macs = conv_cycles_per_mac *. float_of_int macs

let granularity (config : Accel_config.t) =
  match config.accel_dims with
  | g :: _ when g > 0 -> g
  | _ -> failwith "Heuristics: matmul accelerator expected"

let feasible (config : Accel_config.t) ~m ~n ~k (tm, tn, tk) =
  tm > 0 && tn > 0 && tk > 0
  && m mod tm = 0 && n mod tn = 0 && k mod tk = 0
  && tm * tk <= config.buffer_capacity_elems
  && tk * tn <= config.buffer_capacity_elems
  && tm * tn <= config.buffer_capacity_elems

let candidate_tiles (config : Accel_config.t) ~m ~n ~k =
  let g = granularity config in
  let options extent =
    List.filter (fun t -> t mod g = 0 && extent mod t = 0) (Util.divisors extent)
  in
  if not config.flexible then
    if feasible config ~m ~n ~k (g, g, g) then [ (g, g, g) ] else []
  else
    List.concat_map
      (fun tm ->
        List.concat_map
          (fun tn -> List.map (fun tk -> (tm, tn, tk)) (options k))
          (options n))
      (options m)
    |> List.filter (feasible config ~m ~n ~k)

let square_tile (config : Accel_config.t) ~flow ~m ~n ~k =
  let g = granularity config in
  let squares =
    List.filter
      (fun t -> t mod g = 0 && feasible config ~m ~n ~k (t, t, t))
      (Util.divisors (min m (min n k)))
  in
  match List.rev squares with
  | [] -> None
  | best_first :: _ as descending ->
    (* Among feasible squares, minimise the element-transfer count
       (larger tiles always reduce it, so this picks the largest, but
       keep the explicit minimisation for clarity). *)
    let t =
      List.fold_left
        (fun best t ->
          if
            transfer_elems ~flow ~m ~n ~k ~tm:t ~tn:t ~tk:t
            < transfer_elems ~flow ~m ~n ~k ~tm:best ~tn:best ~tk:best
          then t
          else best)
        best_first descending
    in
    Some
      {
        flow;
        tm = t;
        tn = t;
        tk = t;
        predicted_cycles = 0.0;
        predicted_transfer_elems = transfer_elems ~flow ~m ~n ~k ~tm:t ~tn:t ~tk:t;
      }

let best ?(cost = Cost_model.default) (config : Accel_config.t) ~m ~n ~k =
  let flows =
    List.filter (fun name -> name <> "reset") (List.map fst config.opcode_flows)
  in
  let candidates = candidate_tiles config ~m ~n ~k in
  let evaluate flow (tm, tn, tk) =
    {
      flow;
      tm;
      tn;
      tk;
      predicted_cycles = estimate_cycles config ~cost ~flow ~m ~n ~k ~tm ~tn ~tk;
      predicted_transfer_elems = transfer_elems ~flow ~m ~n ~k ~tm ~tn ~tk;
    }
  in
  let all = List.concat_map (fun fl -> List.map (evaluate fl) candidates) flows in
  match all with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun acc c -> if c.predicted_cycles < acc.predicted_cycles then c else acc)
         first rest)

(* Today's default: the selection a user gets without tuning. Flexible
   engines run the Best search; fixed-size engines take their own tile
   under the configuration's selected flow. The autotuner evaluates
   this choice alongside its own candidates, so it can never return a
   config slower than this default. *)
let choose ?(cost = Cost_model.default) (config : Accel_config.t) ~m ~n ~k =
  if config.flexible then best ~cost config ~m ~n ~k
  else
    match candidate_tiles config ~m ~n ~k with
    | [] -> None
    | (tm, tn, tk) :: _ ->
      let flow = config.selected_flow in
      Some
        {
          flow;
          tm;
          tn;
          tk;
          predicted_cycles = estimate_cycles config ~cost ~flow ~m ~n ~k ~tm ~tn ~tk;
          predicted_transfer_elems = transfer_elems ~flow ~m ~n ~k ~tm ~tn ~tk;
        }
