(** Tiling/dataflow selection heuristics for runtime-configurable
    accelerators (paper Sec. IV-C, Fig. 14).

    - [As-squareTile] / [Bs-squareTile] / [Cs-squareTile]: fix the flow
      and pick the largest square tile (a multiple of the engine
      granularity that divides every dimension and fits the buffers),
      minimising the total element-transfer count under that flow.
    - [Best]: search every flow the engine supports crossed with all
      feasible (possibly non-square) tile shapes, minimising a
      cost-model estimate of driver cycles (transfer volume, DMA
      transaction overheads, copy costs and accelerator compute). *)

type choice = {
  flow : string;
  tm : int;
  tn : int;
  tk : int;
  predicted_cycles : float;
  predicted_transfer_elems : float;
}

val transfer_elems :
  flow:string -> m:int -> n:int -> k:int -> tm:int -> tn:int -> tk:int -> float
(** Total f32 elements moved host<->accelerator for a full matmul under
    the flow's reuse structure (sends + receives). *)

val estimate_cycles :
  Accel_config.t ->
  cost:Cost_model.t ->
  flow:string ->
  m:int ->
  n:int ->
  k:int ->
  tm:int ->
  tn:int ->
  tk:int ->
  float
(** Analytic driver-cycle estimate from the cost model: per-opcode DMA
    transactions, streaming words, specialised copy costs, loop
    overheads and (overlapped) accelerator compute. *)

val conv_cycles_per_mac : float
(** Calibrated service-time proxy for the Conv2D engine: host driver
    cycles per MAC under the Os flow with specialised copies (16.0).
    The Os flow re-streams one patch word per MAC, and a staged word
    costs ~14-16 host cycles on the default cost model, so transfers —
    not arithmetic — set the rate. Pinned by the
    "conv-proxy-calibration" regression test (the measured pipeline on
    a row-sampled ResNet-18 layer must stay within a factor of two of
    this constant, and the constant itself is asserted exactly), so
    graph-level SJF and residency predictions cannot silently drift. *)

val estimate_conv_cycles : macs:int -> float
(** [conv_cycles_per_mac *. macs] — the conv analogue of
    {!estimate_cycles}, used by the serving oracle's SJF ranking and
    the graph scheduler's predictions. *)

val square_tile :
  Accel_config.t -> flow:string -> m:int -> n:int -> k:int -> choice option
(** [None] when no feasible square tile exists. *)

val best : ?cost:Cost_model.t -> Accel_config.t -> m:int -> n:int -> k:int -> choice option
(** The [Best] heuristic. *)

val candidate_tiles : Accel_config.t -> m:int -> n:int -> k:int -> (int * int * int) list
(** All feasible (tm, tn, tk) for the engine on this problem. *)

val choose : ?cost:Cost_model.t -> Accel_config.t -> m:int -> n:int -> k:int -> choice option
(** Today's default selection, the baseline the autotuner must never
    lose to: for flexible (v4-style) engines this is {!best}; for
    fixed-size engines it is the engine's own square tile under the
    configuration's [selected_flow]. [None] when no feasible tiling
    exists (the op stays on the CPU path). Any returned choice divides
    every dimension and fits the per-operand buffers. *)
