(** The autotuner's search space: which accelerator-configuration knobs
    are explored, and the enumeration of concrete candidates for a
    workload.

    A candidate bundles everything the compile+simulate pipeline needs:
    the engine (preset), the opcode flow, an optional tile-shape
    override (flexible engines), an optional DMA buffer-size override
    and the double-buffering toggle. Enumeration is the full cross
    product; static pruning ({!Tune_prune}) cuts it down before any
    simulation runs. *)

type candidate = {
  cd_engine : string;  (** ["v1"].."v4"] for matmul engines, ["conv"] *)
  cd_size : int;  (** matmul engine tile edge; 0 for conv *)
  cd_flow : string;
  cd_tiles : (int * int * int) option;  (** flexible-engine tile override *)
  cd_dma_bytes : int option;  (** DMA window override (input and output), bytes *)
  cd_double_buffer : bool;
}

val candidate_to_string : candidate -> string
(** Compact one-line rendering, e.g. ["v4_16/Cs tiles=32,16,64 db"]. *)

val candidate_to_json : candidate -> Json.t
(** Canonical JSON (part of the tune-cache key — field set and order
    are stable). *)

val preset_name : candidate -> string
(** The {!Presets} name this candidate instantiates (["v3_16"],
    ["conv2d"], ...). *)

val config_of_candidate : candidate -> (Accel_config.t, string) result
(** Instantiate the accelerator configuration: preset lookup, flow
    selection, DMA window override. [Error] for unknown engines and
    flows the engine does not support. *)

val codegen_of_candidate : candidate -> Axi4mlir.codegen_options
(** The codegen options the candidate implies (flow/tile overrides,
    double buffering); everything else stays at
    {!Axi4mlir.default_codegen}. *)

type t = {
  sp_engines : (string * int) list;
      (** matmul engines to consider, as (version, size); ignored for
          conv workloads (the Conv2D engine is the only one) *)
  sp_flows : string list option;
      (** restrict to these flow names; [None] = every flow the engine
          supports *)
  sp_tile_search : bool;
      (** explore non-square tile shapes on flexible engines (beyond
          the engine's own square tile) *)
  sp_dma_bytes : int option list;
      (** DMA window sizes to try; [None] = the preset default *)
  sp_double_buffer : bool list;
}

val default : t
(** All Table I engines at sizes 8 and 16, every flow, tile search on,
    preset DMA windows, double buffering both off and on. *)

val fig13 : t
(** The Fig. 13 sweep space: the fixed-size v1/v2/v3 engines at sizes 8
    and 16, every flow, no tile search, no double buffering — the space
    the paper's hand-picked configurations were drawn from. *)

val quick : t
(** A tiny space (v3_16 and v4_16, flows Ns/Cs, no tile search) for
    smoke tests and the [@tune-quick] alias. *)

val restrict_to_preset : t -> Accel_config.t -> t
(** Narrow the engine dimension to the given preset configuration (a
    conv preset leaves the matmul engine list empty). *)

val dimensions : t -> Tune_workload.t -> (string * string list) list
(** The search dimensions and their values for a workload, for
    [axi4mlir_tune --list-space]. *)

val enumerate : t -> Tune_workload.t -> candidate list
(** The full candidate cross product for the workload, in a fixed
    deterministic order. Tile variants come from
    {!Heuristics.candidate_tiles} on flexible engines. *)
