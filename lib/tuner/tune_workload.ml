type t =
  | Matmul of { m : int; n : int; k : int }
  | Conv of { ic : int; ih : int; iw : int; oc : int; fhw : int; stride : int }

type named = { wl_label : string; wl_workload : t }

let dims = function
  | Matmul { m; n; k } -> [ m; n; k ]
  | Conv { ic; ih; iw; oc; fhw; stride } -> [ ic; ih; iw; oc; fhw; stride ]

let to_string = function
  | Matmul { m; n; k } -> Printf.sprintf "matmul %dx%dx%d" m n k
  | Conv { ic; ih; iw; oc; fhw; stride } ->
    Printf.sprintf "conv ic=%d ih=%d iw=%d oc=%d fhw=%d stride=%d" ic ih iw oc fhw stride

let is_conv = function Conv _ -> true | Matmul _ -> false

let macs = function
  | Matmul { m; n; k } -> m * n * k
  | Conv { ic; ih; iw; oc; fhw; stride } ->
    let oh = Gold.conv_out ih ~fhw ~stride and ow = Gold.conv_out iw ~fhw ~stride in
    oc * oh * ow * ic * fhw * fhw

(* Row-sampled layer proxies (the Fig. 16 sampling): [rows] output rows
   at full output width. Per-row work is homogeneous, so config
   rankings transfer to the full layer. *)
let resnet18_layers ?(rows = 2) () =
  List.map
    (fun (l : Resnet18.layer) ->
      let rows = min rows l.Resnet18.ohw in
      let ih = ((rows - 1) * l.Resnet18.stride) + l.Resnet18.fhw in
      {
        wl_label = "resnet18/" ^ l.Resnet18.label;
        wl_workload =
          Conv
            {
              ic = l.Resnet18.ic;
              ih;
              iw = l.Resnet18.ihw;
              oc = l.Resnet18.oc;
              fhw = l.Resnet18.fhw;
              stride = l.Resnet18.stride;
            };
      })
    Resnet18.layers

let tinybert_layers ?(batch = 1) ?(seq = 128) () =
  List.map
    (fun (s : Tinybert.matmul_shape) ->
      {
        wl_label = "tinybert/" ^ s.Tinybert.mm_name;
        wl_workload =
          Matmul
            {
              m = Tinybert.pad16 s.Tinybert.m;
              n = Tinybert.pad16 s.Tinybert.n;
              k = Tinybert.pad16 s.Tinybert.k;
            };
      })
    (Tinybert.matmul_shapes ~batch ~seq)

let spec_help =
  "expected matmul:M,N,K | conv:IC,IHW,OC,FHW[,STRIDE] | resnet18[/<label>] | tinybert"

let ints_of text = List.map int_of_string_opt (String.split_on_char ',' text)

let of_spec spec =
  let err () = Error (Printf.sprintf "bad workload spec %S (%s)" spec spec_help) in
  match String.index_opt spec ':' with
  | Some i -> (
    let kind = String.sub spec 0 i in
    let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
    match (kind, ints_of rest) with
    | "matmul", [ Some m; Some n; Some k ] when m > 0 && n > 0 && k > 0 ->
      Ok [ { wl_label = spec; wl_workload = Matmul { m; n; k } } ]
    | "conv", [ Some ic; Some ihw; Some oc; Some fhw ]
      when ic > 0 && ihw >= fhw && oc > 0 && fhw > 0 ->
      Ok
        [
          {
            wl_label = spec;
            wl_workload = Conv { ic; ih = ihw; iw = ihw; oc; fhw; stride = 1 };
          };
        ]
    | "conv", [ Some ic; Some ihw; Some oc; Some fhw; Some stride ]
      when ic > 0 && ihw >= fhw && oc > 0 && fhw > 0 && stride > 0 ->
      Ok
        [
          {
            wl_label = spec;
            wl_workload = Conv { ic; ih = ihw; iw = ihw; oc; fhw; stride };
          };
        ]
    | _ -> err ())
  | None -> (
    match spec with
    | "resnet18" -> Ok (resnet18_layers ())
    | "tinybert" -> Ok (tinybert_layers ())
    | _ ->
      (* resnet18/<label>: a single layer *)
      let prefix = "resnet18/" in
      let plen = String.length prefix in
      if String.length spec > plen && String.sub spec 0 plen = prefix then
        let label = String.sub spec plen (String.length spec - plen) in
        match
          List.find_opt (fun n -> n.wl_label = spec) (resnet18_layers ())
        with
        | Some n -> Ok [ n ]
        | None ->
          Error
            (Printf.sprintf "unknown resnet18 layer %S (valid: %s)" label
               (String.concat ", " (List.map (fun (l : Resnet18.layer) -> l.Resnet18.label) Resnet18.layers)))
      else err ())
