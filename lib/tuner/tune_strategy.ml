type t = Grid | Greedy of { seed : int; budget : int option }

let to_string = function
  | Grid -> "grid"
  | Greedy { seed; budget } ->
    Printf.sprintf "greedy(seed=%d%s)" seed
      (match budget with None -> "" | Some b -> Printf.sprintf ", budget=%d" b)

let of_string ?(seed = 0) ?budget = function
  | "grid" -> Ok Grid
  | "greedy" -> Ok (Greedy { seed; budget })
  | other ->
    Error (Printf.sprintf "unknown strategy %S (valid strategies: grid, greedy)" other)

(* splitmix64: the deterministic tie-break stream. Same algorithm as
   the fuzzer's Fuzz_rng, inlined to keep the tuner's dependency
   surface to the libraries it actually simulates with. *)
let splitmix64 state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z' = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z'' = mul (logxor z' (shift_right_logical z' 27)) 0x94D049BB133111EBL in
  (logxor z'' (shift_right_logical z'' 31), z)

(* A per-index perturbation in [0, 1): equal-predict candidates sort in
   a seed-dependent but reproducible order. *)
let jitter ~seed i =
  let v, _ =
    splitmix64 (Int64.add (Int64.of_int ((seed * 0x10001) + 1)) (Int64.of_int (i * 2)))
  in
  Int64.to_float (Int64.shift_right_logical v 11) /. 9007199254740992.0

let run strategy ~n ~predict ~neighbors ~eval =
  let best = ref None in
  let evaluated : (int, float option) Hashtbl.t = Hashtbl.create 16 in
  let evals = ref 0 in
  let eval_memo i =
    match Hashtbl.find_opt evaluated i with
    | Some r -> r
    | None ->
      incr evals;
      let r = eval i in
      Hashtbl.replace evaluated i r;
      (match r with
      | Some c -> (
        match !best with
        | Some (_, bc) when bc <= c -> ()
        | _ -> best := Some (i, c))
      | None -> ());
      r
  in
  (match strategy with
  | Grid ->
    for i = 0 to n - 1 do
      ignore (eval_memo i)
    done
  | Greedy { seed; budget } ->
    let budget = match budget with Some b -> max 1 b | None -> max 1 (n / 4) in
    let by_prediction indices =
      List.sort
        (fun a b -> compare (predict a, jitter ~seed a) (predict b, jitter ~seed b))
        indices
    in
    let ranked = by_prediction (List.init n (fun i -> i)) in
    let remaining () = budget - !evals in
    let cycles_of i =
      match Hashtbl.find_opt evaluated i with Some (Some c) -> c | _ -> infinity
    in
    let rec climb current =
      if remaining () > 0 then
        let frontier =
          by_prediction
            (List.filter (fun j -> not (Hashtbl.mem evaluated j)) (neighbors current))
        in
        let rec try_next = function
          | [] -> () (* local optimum under the evaluated neighborhood *)
          | j :: rest ->
            if remaining () <= 0 then ()
            else (
              match eval_memo j with
              | Some c when c < cycles_of current -> climb j
              | _ -> try_next rest)
        in
        try_next frontier
    in
    List.iter
      (fun i ->
        if remaining () > 0 && not (Hashtbl.mem evaluated i) then (
          ignore (eval_memo i);
          climb i))
      ranked);
  (!best, !evals)
