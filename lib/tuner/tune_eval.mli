(** One candidate through the real pipeline: build the workload module,
    compile it with the candidate's codegen options on a fresh
    simulated SoC, run it, and read the performance counters.

    This is the expensive leg of the tuner — everything in
    {!Tune_prune} exists to avoid calling it. Each successful call
    bumps the ["tuner_evaluations"] metrics counter (the counter the
    warm-cache test pins at zero) and, when a tracer is given, records
    a complete event on {!Trace.tuner_track} spanning the evaluation's
    host-process time.

    A pipeline rejection (the matcher refusing to offload, a pass
    failure) is an [Error], not an exception: rejected candidates are a
    normal part of design-space exploration and are cached like any
    other outcome. *)

type outcome = {
  ev_cycles : float;  (** simulated host cycles of the measured run *)
  ev_counters : Perf_counters.t;
  ev_bottleneck : string option;
      (** the binding resource ("host" | "dma" | "accel") the perf
          doctor attributes the run's critical path to; [None] when the
          analysis failed. Only fresh evaluations carry it — the tune
          cache does not persist bottlenecks. *)
}

val evaluate :
  ?host:Host_config.t ->
  ?tracer:Trace.t ->
  Tune_workload.t ->
  Tune_space.candidate ->
  (outcome, string) result
(** Compile+simulate the candidate on the workload. Conv workloads run
    the specialised copy strategy (the hand-written-driver default).
    [tracer] is the {e tuning} tracer (tuner track), not the simulated
    SoC's. *)

val diagnose :
  ?host:Host_config.t ->
  Tune_workload.t ->
  Tune_space.candidate ->
  (Doctor.diagnosis, string) result
(** Re-run the candidate (one full compile+simulate, uncached and not
    counted as a tuner evaluation) and hand the measured run to the
    perf doctor. Used by [axi4mlir-tune --doctor] to diagnose the
    winning configuration. *)
