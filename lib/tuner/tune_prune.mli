(** Static pruning: reject candidates that cannot work — or provably
    cannot win — before paying for a compile+simulate evaluation.

    Three classes of checks run without any simulation:
    - {e validity}: the preset exists, the engine supports the flow,
      the assembled {!Accel_config} passes [validate];
    - {e feasibility}: the effective tile divides every workload
      dimension, respects the engine granularity, fits the per-operand
      accelerator buffers, and every single DMA transfer fits the DMA
      window (halved when double buffering splits it into ping/pong
      staging halves);
    - {e dominance}: among tile variants of the same
      (engine, flow, DMA, double-buffer) group, only the Pareto front
      under (cost-model cycles, transferred elements) survives — a
      shape worse on both axes cannot be the winner under any
      simulator refinement of the cost model's ranking.

    The cost-model estimate ({!predict}) is also the seed signal of the
    greedy strategy. *)

type reason =
  | Invalid of string  (** preset/flow lookup or config validation failed *)
  | Non_dividing  (** tile does not divide a dimension / granularity break *)
  | Capacity  (** tile exceeds the per-operand accelerator buffer *)
  | Dma_overflow  (** a single transfer does not fit the DMA window *)
  | Dominated  (** Pareto-dominated by a sibling tile shape *)

val reason_label : reason -> string
(** Stable short label (metrics label value, report key). *)

val reason_to_string : reason -> string

val effective_tiles : Tune_space.candidate -> Tune_workload.t -> (int * int * int) option
(** The tile shape the candidate will actually run with: the explicit
    override, or the engine's square tile. [None] for conv workloads
    (the conv engine absorbs its reduction dims). *)

val check :
  Tune_workload.t -> Tune_space.candidate -> (Accel_config.t, reason) result
(** Validity + feasibility for one candidate (no dominance — that is
    relative to the rest of the population). *)

val predict : ?cost:Cost_model.t -> Tune_workload.t -> Tune_space.candidate -> float
(** Analytic driver-cycle estimate used to rank candidates without
    simulating: {!Heuristics.estimate_cycles} for matmul, a
    transaction-count surrogate for conv. [infinity] when {!check}
    rejects the candidate. *)

val prune :
  ?cost:Cost_model.t ->
  Tune_workload.t ->
  Tune_space.candidate list ->
  Tune_space.candidate list * (Tune_space.candidate * reason) list
(** Split a population into survivors (original order preserved) and
    pruned candidates with reasons. *)
