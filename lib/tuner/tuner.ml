type options = {
  strategy : Tune_strategy.t;
  space : Tune_space.t;
  cache : Tune_cache.t option;
  host : Host_config.t option;
  tracer : Trace.t option;
  cost : Cost_model.t;
  seed_from_bottleneck : bool;
}

let default_options =
  {
    strategy = Tune_strategy.Grid;
    space = Tune_space.default;
    cache = None;
    host = None;
    tracer = None;
    cost = Cost_model.default;
    seed_from_bottleneck = false;
  }

(* ------------------------------------------------------------------ *)
(* Heuristic baseline                                                  *)
(* ------------------------------------------------------------------ *)

let baseline_candidate ?(cost = Cost_model.default) space workload =
  match workload with
  | Tune_workload.Conv _ ->
    (* the hand-written conv driver default: preset flow, no frills *)
    Some
      {
        Tune_space.cd_engine = "conv";
        cd_size = 0;
        cd_flow = (Presets.conv ()).Accel_config.selected_flow;
        cd_tiles = None;
        cd_dma_bytes = None;
        cd_double_buffer = false;
      }
  | Tune_workload.Matmul { m; n; k } -> (
    match space.Tune_space.sp_engines with
    | [] -> None
    | engines ->
      (* the engine a user would reach for: the largest in the space,
         flexible (v4) breaking ties — that is where the heuristics
         have real choices to make *)
      let engine, size =
        List.fold_left
          (fun (be, bs) (e, s) ->
            if s > bs || (s = bs && e > be) then (e, s) else (be, bs))
          (List.hd engines) (List.tl engines)
      in
      let rec first_choice = function
        | [] -> None
        | (engine, size) :: rest -> (
          match Presets.find_by_name (Printf.sprintf "%s_%d" engine size) with
          | Error _ -> first_choice rest
          | Ok config -> (
            match Heuristics.choose ~cost config ~m ~n ~k with
            | None -> first_choice rest
            | Some choice ->
              let square = choice.Heuristics.tm = size && choice.Heuristics.tn = size
                           && choice.Heuristics.tk = size in
              Some
                {
                  Tune_space.cd_engine = engine;
                  cd_size = size;
                  cd_flow = choice.Heuristics.flow;
                  cd_tiles =
                    (if square then None
                     else Some (choice.Heuristics.tm, choice.Heuristics.tn, choice.Heuristics.tk));
                  cd_dma_bytes = None;
                  cd_double_buffer = false;
                }))
      in
      (* fall back through smaller engines when the preferred one has
         no feasible tiling for these dims *)
      let ordered =
        (engine, size)
        :: List.filter (fun es -> es <> (engine, size)) (List.rev engines)
      in
      first_choice ordered)

(* ------------------------------------------------------------------ *)
(* Neighborhood: candidates differing in exactly one knob              *)
(* ------------------------------------------------------------------ *)

let knob_distance (a : Tune_space.candidate) (b : Tune_space.candidate) =
  let d = ref 0 in
  if (a.Tune_space.cd_engine, a.Tune_space.cd_size)
     <> (b.Tune_space.cd_engine, b.Tune_space.cd_size)
  then incr d;
  if a.Tune_space.cd_flow <> b.Tune_space.cd_flow then incr d;
  if a.Tune_space.cd_tiles <> b.Tune_space.cd_tiles then incr d;
  if a.Tune_space.cd_dma_bytes <> b.Tune_space.cd_dma_bytes then incr d;
  if a.Tune_space.cd_double_buffer <> b.Tune_space.cd_double_buffer then incr d;
  !d

(* ------------------------------------------------------------------ *)
(* One workload                                                        *)
(* ------------------------------------------------------------------ *)

let tune_workload opts (named : Tune_workload.named) =
  let workload = named.Tune_workload.wl_workload in
  let label = named.Tune_workload.wl_label in
  let t0 = Sys.time () in
  let candidates = Tune_space.enumerate opts.space workload in
  Metrics.incr ~by:(float_of_int (List.length candidates)) "tuner_candidates";
  let kept, pruned = Tune_prune.prune ~cost:opts.cost workload candidates in
  let pruned_counts =
    List.fold_left
      (fun acc (_, reason) ->
        let l = Tune_prune.reason_label reason in
        Metrics.incr ~labels:[ ("reason", l) ] "tuner_pruned";
        match List.assoc_opt l acc with
        | None -> acc @ [ (l, 1) ]
        | Some _ -> List.map (fun (k, v) -> if k = l then (k, v + 1) else (k, v)) acc)
      [] pruned
  in
  let arr = Array.of_list kept in
  let n = Array.length arr in
  let cache_hits = ref 0 and fresh = ref 0 and rejected = ref 0 in
  (* The binding resource the perf doctor observed on the baseline
     evaluation, when bottleneck seeding is on. Only a *fresh*
     evaluation can fill it — the cache stores cycles, not diagnoses —
     so a warm cache leaves the ranking untouched (and still runs zero
     simulations). *)
  let observed_bottleneck = ref None in
  (* cache-through evaluation of one candidate *)
  let eval_candidate ?(capture_bottleneck = false) c =
    match Tune_space.config_of_candidate c with
    | Error _ -> None
    | Ok config -> (
      let key = Tune_cache.key workload config c in
      let cached = Option.bind opts.cache (fun t -> Tune_cache.find t key) in
      match cached with
      | Some outcome ->
        incr cache_hits;
        Metrics.incr "tuner_cache_hits";
        (match outcome with
        | Tune_cache.Cycles cy -> Some cy
        | Tune_cache.Rejected _ -> None)
      | None -> (
        match Tune_eval.evaluate ?host:opts.host ?tracer:opts.tracer workload c with
        | Ok o ->
          incr fresh;
          if capture_bottleneck then
            observed_bottleneck := o.Tune_eval.ev_bottleneck;
          Option.iter
            (fun t ->
              Tune_cache.add t ~key ~label ~workload ~candidate:c
                (Tune_cache.Cycles o.Tune_eval.ev_cycles))
            opts.cache;
          Some o.Tune_eval.ev_cycles
        | Error msg ->
          incr rejected;
          Option.iter
            (fun t ->
              Tune_cache.add t ~key ~label ~workload ~candidate:c
                (Tune_cache.Rejected msg))
            opts.cache;
          None))
  in
  let neighbors i =
    let rec collect j acc =
      if j < 0 then acc
      else
        collect (j - 1) (if j <> i && knob_distance arr.(i) arr.(j) = 1 then j :: acc else acc)
    in
    collect (n - 1) []
  in
  (* the heuristic fallback: always measured, so the tuner can never
     return something slower than today's default. Measured *before*
     the strategy so its perf-doctor diagnosis can seed the ranking
     (same evaluation either way — only the order moves). *)
  let baseline =
    match baseline_candidate ~cost:opts.cost opts.space workload with
    | None -> None
    | Some c -> (
      match eval_candidate ~capture_bottleneck:opts.seed_from_bottleneck c with
      | None -> None
      | Some cycles -> Some (c, cycles))
  in
  (* Nudge the predicted ranking toward candidates that attack the
     observed bottleneck: DMA-bound runs favour double buffering (it
     hides transfer latency), host-bound runs favour the largest
     engines (fewer host-managed tiles). A 10% discount reorders the
     greedy frontier without overruling a clearly better prediction. *)
  let max_engine_size =
    List.fold_left (fun acc (_, s) -> max acc s) 0 opts.space.Tune_space.sp_engines
  in
  let bias (c : Tune_space.candidate) predicted =
    match !observed_bottleneck with
    | Some "dma" when c.Tune_space.cd_double_buffer -> predicted *. 0.9
    | Some "host" when c.Tune_space.cd_size = max_engine_size -> predicted *. 0.9
    | _ -> predicted
  in
  (match !observed_bottleneck with
  | None -> ()
  | Some resource ->
    Remarks.emit ~kind:Remarks.Analysis ~pass:"tuner" ~name:"bottleneck-seed"
      ~loc:label
      ~args:[ ("bottleneck", Remarks.Str resource) ]
      (Printf.sprintf
         "greedy ranking seeded from the baseline's observed %s bottleneck"
         resource));
  let strategy_best, _distinct =
    Tune_strategy.run opts.strategy ~n
      ~predict:(fun i -> bias arr.(i) (Tune_prune.predict ~cost:opts.cost workload arr.(i)))
      ~neighbors
      ~eval:(fun i -> eval_candidate arr.(i))
  in
  let best =
    match (strategy_best, baseline) with
    | None, None -> None
    | Some (i, cycles), None ->
      Some
        { Tune_report.bs_candidate = arr.(i); bs_cycles = cycles; bs_from_baseline = false }
    | None, Some (c, cycles) ->
      Some { Tune_report.bs_candidate = c; bs_cycles = cycles; bs_from_baseline = true }
    | Some (i, sc), Some (c, bc) ->
      if sc < bc then
        Some { Tune_report.bs_candidate = arr.(i); bs_cycles = sc; bs_from_baseline = false }
      else Some { Tune_report.bs_candidate = c; bs_cycles = bc; bs_from_baseline = true }
  in
  (match best with
  | None ->
    Remarks.emit ~kind:Remarks.Missed ~pass:"tuner" ~name:"no-config" ~loc:label
      (Printf.sprintf "no candidate of %d survived for %s" (List.length candidates)
         (Tune_workload.to_string workload))
  | Some b ->
    Remarks.emit ~kind:Remarks.Applied ~pass:"tuner" ~name:"selected-config" ~loc:label
      ~args:
        [
          ("config", Remarks.Str (Tune_space.candidate_to_string b.Tune_report.bs_candidate));
          ("cycles", Remarks.Num b.Tune_report.bs_cycles);
          ("evaluations", Remarks.Int !fresh);
          ("cache_hits", Remarks.Int !cache_hits);
        ]
      (Printf.sprintf "selected %s (%.0f cycles) for %s"
         (Tune_space.candidate_to_string b.Tune_report.bs_candidate)
         b.Tune_report.bs_cycles
         (Tune_workload.to_string workload));
    match baseline with
    | Some (bc, bcycles) ->
      Remarks.emit ~kind:Remarks.Analysis ~pass:"tuner" ~name:"baseline-comparison"
        ~loc:label
        ~args:
          [
            ("baseline", Remarks.Str (Tune_space.candidate_to_string bc));
            ("baseline_cycles", Remarks.Num bcycles);
            ("speedup", Remarks.Num (bcycles /. b.Tune_report.bs_cycles));
          ]
        (Printf.sprintf "heuristic default %s: %.0f cycles (tuned is %.2fx)"
           (Tune_space.candidate_to_string bc) bcycles
           (bcycles /. b.Tune_report.bs_cycles))
    | None ->
      Remarks.emit ~kind:Remarks.Analysis ~pass:"tuner" ~name:"baseline-comparison"
        ~loc:label "no feasible heuristic baseline for this workload");
  Option.iter
    (fun tracer ->
      Trace.complete tracer ~cat:"tuner" ~track:Trace.tuner_track ~ts:(t0 *. 1e6)
        ~dur:((Sys.time () -. t0) *. 1e6)
        ~args:
          [
            ("space", Trace.Int (List.length candidates));
            ("evaluated", Trace.Int !fresh);
            ("cache_hits", Trace.Int !cache_hits);
          ]
        ("tune " ^ label))
    opts.tracer;
  {
    Tune_report.r_label = label;
    r_workload = workload;
    r_space = List.length candidates;
    r_pruned = pruned_counts;
    r_evaluated = !fresh;
    r_cache_hits = !cache_hits;
    r_rejected = !rejected;
    r_best = best;
    r_baseline =
      Option.map
        (fun (c, cycles) -> (Tune_space.candidate_to_string c, cycles))
        baseline;
  }

let tune opts workloads =
  {
    Tune_report.rp_strategy = opts.strategy;
    rp_results = List.map (tune_workload opts) workloads;
  }
