let schema = "axi4mlir-tune-report-v1"

type best = {
  bs_candidate : Tune_space.candidate;
  bs_cycles : float;
  bs_from_baseline : bool;
}

type result = {
  r_label : string;
  r_workload : Tune_workload.t;
  r_space : int;
  r_pruned : (string * int) list;
  r_evaluated : int;
  r_cache_hits : int;
  r_rejected : int;
  r_best : best option;
  r_baseline : (string * float) option;
}

type t = { rp_strategy : Tune_strategy.t; rp_results : result list }

let speedup_vs_baseline r =
  match (r.r_best, r.r_baseline) with
  | Some best, Some (_, base) when best.bs_cycles > 0.0 -> Some (base /. best.bs_cycles)
  | _ -> None

let result_to_json r =
  Json.Obj
    [
      ("label", Json.String r.r_label);
      ("workload", Json.String (Tune_workload.to_string r.r_workload));
      ( "dims",
        Json.List (List.map (fun d -> Json.Int d) (Tune_workload.dims r.r_workload)) );
      ("space", Json.Int r.r_space);
      ("pruned", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.r_pruned));
      ("evaluated", Json.Int r.r_evaluated);
      ("cache_hits", Json.Int r.r_cache_hits);
      ("rejected", Json.Int r.r_rejected);
      ( "best",
        match r.r_best with
        | None -> Json.Null
        | Some b ->
          Json.Obj
            [
              ("candidate", Tune_space.candidate_to_json b.bs_candidate);
              ("config", Json.String (Tune_space.candidate_to_string b.bs_candidate));
              ("cycles", Json.Float b.bs_cycles);
              ("from_baseline", Json.Bool b.bs_from_baseline);
            ] );
      ( "baseline",
        match r.r_baseline with
        | None -> Json.Null
        | Some (descr, cycles) ->
          Json.Obj [ ("config", Json.String descr); ("cycles", Json.Float cycles) ] );
      ( "speedup_vs_baseline",
        match speedup_vs_baseline r with None -> Json.Null | Some s -> Json.Float s );
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("strategy", Json.String (Tune_strategy.to_string t.rp_strategy));
      ("results", Json.List (List.map result_to_json t.rp_results));
    ]

let render t =
  let table =
    Tabulate.create
      [
        ("workload", Tabulate.Left);
        ("space", Tabulate.Right);
        ("pruned", Tabulate.Right);
        ("eval", Tabulate.Right);
        ("cached", Tabulate.Right);
        ("best config", Tabulate.Left);
        ("cycles", Tabulate.Right);
        ("vs heuristic", Tabulate.Right);
      ]
  in
  List.iter
    (fun r ->
      let pruned = List.fold_left (fun acc (_, n) -> acc + n) 0 r.r_pruned in
      Tabulate.add_row table
        [
          r.r_label;
          string_of_int r.r_space;
          string_of_int pruned;
          string_of_int r.r_evaluated;
          string_of_int r.r_cache_hits;
          (match r.r_best with
          | None -> "(none)"
          | Some b ->
            Tune_space.candidate_to_string b.bs_candidate
            ^ if b.bs_from_baseline then " [heuristic]" else "");
          (match r.r_best with
          | None -> "-"
          | Some b -> Printf.sprintf "%.0f" b.bs_cycles);
          (match speedup_vs_baseline r with
          | None -> "-"
          | Some s -> Tabulate.fmt_x s);
        ])
    t.rp_results;
  Printf.sprintf "Tuning report (strategy: %s)\n%s\n"
    (Tune_strategy.to_string t.rp_strategy)
    (Tabulate.render table)

let write_file path t =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:2 (to_json t));
  output_char oc '\n';
  close_out oc
