(** The reproducible tuning report: per workload, the space that was
    explored, what pruning removed and why, how many candidates were
    actually simulated (vs served from the cache), the winning
    configuration and the heuristic baseline it is compared against.

    JSON schema ["axi4mlir-tune-report-v1"]; the same document renders
    as a plain-text table for the terminal. *)

val schema : string

type best = {
  bs_candidate : Tune_space.candidate;
  bs_cycles : float;
  bs_from_baseline : bool;
      (** the heuristic baseline won (or tied) — the tuner's
          never-worse guarantee kicking in *)
}

type result = {
  r_label : string;
  r_workload : Tune_workload.t;
  r_space : int;  (** enumerated candidates before pruning *)
  r_pruned : (string * int) list;  (** {!Tune_prune.reason_label} -> count *)
  r_evaluated : int;  (** fresh pipeline evaluations this run *)
  r_cache_hits : int;
  r_rejected : int;  (** candidates the pipeline refused *)
  r_best : best option;  (** [None]: nothing ran (all pruned/rejected) *)
  r_baseline : (string * float) option;
      (** heuristic default: description and its measured cycles *)
}

type t = {
  rp_strategy : Tune_strategy.t;
  rp_results : result list;
}

val speedup_vs_baseline : result -> float option
(** baseline cycles / best cycles; [None] without both. *)

val to_json : t -> Json.t
val render : t -> string
val write_file : string -> t -> unit
