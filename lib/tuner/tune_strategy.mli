(** Search strategies over a pruned candidate population.

    Strategies are written against an abstract index space [0..n-1] so
    they can be tested without any simulation: the driver supplies the
    cost-model ranking signal ([predict]), the neighborhood structure
    ([neighbors], candidates differing in exactly one knob) and the
    expensive evaluator ([eval]).

    - {!Grid} evaluates every index — the exhaustive reference.
    - {!Greedy} is a cost-model-seeded hill climb: rank all indices by
      [predict] (free — no simulation), evaluate the best-predicted
      point, climb to any improving neighbor (neighbors tried in
      predicted order), and on a local optimum restart from the next
      best-predicted unevaluated index, all within an evaluation
      budget (default [max 1 (n/4)] — a quarter of the space). Ties in
      the predicted ranking break by a splitmix64 stream derived from
      [seed], so runs are reproducible given [--seed] and different
      seeds explore tie groups in different orders. *)

type t =
  | Grid
  | Greedy of { seed : int; budget : int option }
      (** [budget = None]: a quarter of the population, at least 1 *)

val to_string : t -> string

val of_string : ?seed:int -> ?budget:int -> string -> (t, string) result
(** ["grid"] or ["greedy"]; the error lists the valid names. [seed]
    (default 0) and [budget] only affect ["greedy"]. *)

val run :
  t ->
  n:int ->
  predict:(int -> float) ->
  neighbors:(int -> int list) ->
  eval:(int -> float option) ->
  (int * float) option * int
(** Search the index space. [eval i] returns the measured cycles, or
    [None] when the pipeline rejects the candidate; each index is
    evaluated at most once (memoised here). Returns the best
    [(index, cycles)] found — [None] if nothing evaluated successfully —
    and the number of distinct [eval] calls made. *)
