type outcome = {
  ev_cycles : float;
  ev_counters : Perf_counters.t;
  ev_bottleneck : string option;
}

(* The binding resource of the measured run, per the perf doctor. The
   diagnosis is a pure in-memory walk over the timeline snapshot —
   cheap next to the simulation that produced it — so every fresh
   evaluation gets one. An analysis failure is not an evaluation
   failure; the tuner just loses the seeding hint. *)
let bottleneck_of bench =
  match Doctor.diagnose (Soc.critpath_input bench.Axi4mlir.soc) with
  | Ok dg -> Some (Doctor.binding_resource dg)
  | Error _ -> None

let run_candidate ?host workload candidate =
  match Tune_space.config_of_candidate candidate with
  | Error msg -> Error msg
  | Ok config -> (
    let bench = Axi4mlir.create ?host config in
    let options = Tune_space.codegen_of_candidate candidate in
    match workload with
    | Tune_workload.Matmul { m; n; k } ->
      let a, b, c = Axi4mlir.alloc_matmul_operands bench ~m ~n ~k in
      let compiled = Axi4mlir.compile_matmul bench ~options ~m ~n ~k () in
      let counters =
        Axi4mlir.measure bench (fun () ->
            Axi4mlir.run_matmul bench ~options compiled ~a ~b ~c)
      in
      Ok
        ( {
            ev_cycles = counters.Perf_counters.cycles;
            ev_counters = counters;
            ev_bottleneck = bottleneck_of bench;
          },
          bench )
    | Tune_workload.Conv { ic; ih; iw; oc; fhw; stride } ->
      let n = 1 in
      let i, w, o =
        Axi4mlir.alloc_conv_operands ~stride bench ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw
      in
      let ir =
        Axi4mlir.build_conv_module ~stride ~n ~ic ~ih ~iw ~oc ~fh:fhw ~fw:fhw ()
      in
      let compiled = Axi4mlir.compile bench ~options ir in
      let counters =
        Axi4mlir.measure bench (fun () ->
            Axi4mlir.run_func bench ~copy_strategy:Dma_library.Specialized compiled
              "conv_call"
              [ Interp.M i; Interp.M w; Interp.M o ])
      in
      Ok
        ( {
            ev_cycles = counters.Perf_counters.cycles;
            ev_counters = counters;
            ev_bottleneck = bottleneck_of bench;
          },
          bench ))

(* The pipeline signals "cannot offload" with Failure (the facade's
   on_skip) and pass breakage with Pass_failure / Rejected; all are
   ordinary negative outcomes for a tuner. *)
let protect f =
  match f () with
  | result -> result
  | exception Failure msg -> Error msg
  | exception Pass.Pass_failure { pass; failing_op = _; message } ->
    Error (Printf.sprintf "%s: %s" pass message)
  | exception Interp.Runtime_error msg -> Error ("runtime: " ^ msg)

let evaluate ?host ?tracer workload candidate =
  let t0 = Sys.time () in
  let result =
    protect (fun () -> Result.map fst (run_candidate ?host workload candidate))
  in
  (match result with
  | Ok _ -> Metrics.incr "tuner_evaluations"
  | Error _ -> Metrics.incr "tuner_rejected");
  (match tracer with
  | None -> ()
  | Some tracer ->
    let ts = t0 *. 1e6 and dur = (Sys.time () -. t0) *. 1e6 in
    Trace.complete tracer ~cat:"tuner" ~track:Trace.tuner_track ~ts ~dur
      ~args:
        [
          ("candidate", Trace.Str (Tune_space.candidate_to_string candidate));
          ( "outcome",
            match result with
            | Ok o -> Trace.Num o.ev_cycles
            | Error msg -> Trace.Str ("rejected: " ^ msg) );
        ]
      ("evaluate " ^ Tune_space.candidate_to_string candidate));
  result

let diagnose ?host workload candidate =
  match protect (fun () -> run_candidate ?host workload candidate) with
  | Error msg -> Error msg
  | Ok (_, bench) -> Doctor.diagnose (Soc.critpath_input bench.Axi4mlir.soc)
