type reason =
  | Invalid of string
  | Non_dividing
  | Capacity
  | Dma_overflow
  | Dominated

let reason_label = function
  | Invalid _ -> "invalid"
  | Non_dividing -> "non_dividing"
  | Capacity -> "capacity"
  | Dma_overflow -> "dma_overflow"
  | Dominated -> "dominated"

let reason_to_string = function
  | Invalid msg -> "invalid config: " ^ msg
  | Non_dividing -> "tile does not divide the iteration space"
  | Capacity -> "tile exceeds the accelerator buffer capacity"
  | Dma_overflow -> "transfer does not fit the DMA window"
  | Dominated -> "Pareto-dominated by a sibling tile shape"

let effective_tiles (c : Tune_space.candidate) workload =
  match workload with
  | Tune_workload.Conv _ -> None
  | Tune_workload.Matmul _ -> (
    match c.Tune_space.cd_tiles with
    | Some _ as tiles -> tiles
    | None -> Some (c.Tune_space.cd_size, c.Tune_space.cd_size, c.Tune_space.cd_size))

let bytes_per_elem = 4 (* f32 over a 32-bit AXI-S word *)

(* Feasibility of one matmul candidate on (m, n, k): granularity,
   dividing tiles, accelerator buffers, DMA window per transfer. *)
let check_matmul (config : Accel_config.t) c ~m ~n ~k =
  match effective_tiles c (Tune_workload.Matmul { m; n; k }) with
  | None -> Error (Invalid "matmul candidate without tiles")
  | Some (tm, tn, tk) ->
    let g = c.Tune_space.cd_size in
    if tm <= 0 || tn <= 0 || tk <= 0 then Error Non_dividing
    else if tm mod g <> 0 || tn mod g <> 0 || tk mod g <> 0 then Error Non_dividing
    else if m mod tm <> 0 || n mod tn <> 0 || k mod tk <> 0 then Error Non_dividing
    else if
      tm * tk > config.Accel_config.buffer_capacity_elems
      || tk * tn > config.Accel_config.buffer_capacity_elems
      || tm * tn > config.Accel_config.buffer_capacity_elems
    then Error Capacity
    else
      (* largest single send: a tile plus its opcode word; double
         buffering stages into ping/pong halves of the input window *)
      let send_bytes = (max (tm * tk) (tk * tn) + 1) * bytes_per_elem in
      let input_need =
        if c.Tune_space.cd_double_buffer then 2 * send_bytes else send_bytes
      in
      let recv_bytes = tm * tn * bytes_per_elem in
      if
        input_need > config.Accel_config.dma.Accel_config.input_buffer_size
        || recv_bytes > config.Accel_config.dma.Accel_config.output_buffer_size
      then Error Dma_overflow
      else Ok config

let check_conv (config : Accel_config.t) c ~ic ~ih ~iw ~oc ~fhw ~stride =
  ignore oc;
  let oh = Gold.conv_out ih ~fhw ~stride and ow = Gold.conv_out iw ~fhw ~stride in
  if oh <= 0 || ow <= 0 then Error (Invalid "empty convolution output")
  else
    let slice = ic * fhw * fhw in
    if slice > config.Accel_config.buffer_capacity_elems then Error Capacity
    else
      let send_bytes = (slice + 1) * bytes_per_elem in
      let input_need =
        if c.Tune_space.cd_double_buffer then 2 * send_bytes else send_bytes
      in
      (* the Os flow drains a whole output slice in one transfer *)
      let recv_elems = if c.Tune_space.cd_flow = "Os" then oh * ow else 1 in
      if
        input_need > config.Accel_config.dma.Accel_config.input_buffer_size
        || recv_elems * bytes_per_elem
           > config.Accel_config.dma.Accel_config.output_buffer_size
      then Error Dma_overflow
      else Ok config

let check workload (c : Tune_space.candidate) =
  match Tune_space.config_of_candidate c with
  | Error msg -> Error (Invalid msg)
  | Ok config -> (
    match Accel_config.validate config with
    | Error msg -> Error (Invalid msg)
    | Ok () -> (
      match workload with
      | Tune_workload.Matmul { m; n; k } -> check_matmul config c ~m ~n ~k
      | Tune_workload.Conv { ic; ih; iw; oc; fhw; stride } ->
        check_conv config c ~ic ~ih ~iw ~oc ~fhw ~stride))

(* ------------------------------------------------------------------ *)
(* Cost-model prediction                                               *)
(* ------------------------------------------------------------------ *)

let f = float_of_int

(* Conv surrogate: transaction-dominated estimate per flow structure
   (Ws: per-pixel patch send + per-pixel drain; Os: per-pixel patch
   send, one slice drain per channel; Ns: everything per pixel). Only
   the ranking matters — the simulator refines the actual cycles. *)
let conv_predict ~(cost : Cost_model.t) ~flow ~ic ~ih ~iw ~oc ~fhw ~stride =
  let oh = Gold.conv_out ih ~fhw ~stride and ow = Gold.conv_out iw ~fhw ~stride in
  let slice = ic * fhw * fhw in
  let pixels = oh * ow in
  let per_word = Cost_model.cpu_cycles_per_word cost in
  let txn words =
    cost.Cost_model.dma_program_cycles +. cost.Cost_model.dma_wait_cycles
    +. (f words *. per_word)
  in
  let copy words = 2.0 *. f words in
  match flow with
  | "Ws" ->
    f oc
    *. (txn (slice + 1)
       +. (f pixels *. (txn (slice + 1) +. txn 1 +. txn 1 +. copy slice +. copy 1)))
  | "Os" ->
    f oc
    *. (txn (slice + 1)
       +. (f pixels *. (txn (slice + 1) +. copy slice))
       +. txn 1 +. txn pixels +. copy pixels)
  | "Ns" ->
    f oc *. f pixels
    *. (txn (slice + 1) +. txn (slice + 1) +. txn 1 +. txn 1 +. copy (2 * slice))
  | _ -> infinity

(* Heuristics.estimate_cycles models the v3/v4 opcode structure
   (separate sA / sB / cC / rC transactions). The fused opcodes of the
   simpler engines issue fewer DMA transactions per inner iteration:
   v2's cCrC folds the compute trigger into the drain request (one
   one-word send saved), v1's single sAsBcCrC merges both input sends
   and drops both trigger sends (three one-word-transaction equivalents
   saved). Without this correction the greedy seed ranks v1/v2 engines
   too low and climbs from the wrong starting point. *)
let opcode_structure_correction (config : Accel_config.t) ~(cost : Cost_model.t)
    ~inner_iters =
  let saved_txns =
    match config.Accel_config.engine with
    | Accel_config.Matmul_engine (Accel_matmul.V1, _) -> 3.0
    | Accel_config.Matmul_engine (Accel_matmul.V2, _) -> 1.0
    | _ -> 0.0
  in
  let txn1 =
    cost.Cost_model.dma_program_cycles +. cost.Cost_model.dma_wait_cycles
    +. Cost_model.cpu_cycles_per_word cost
  in
  float_of_int inner_iters *. saved_txns *. txn1

let predict ?(cost = Cost_model.default) workload (c : Tune_space.candidate) =
  match check workload c with
  | Error _ -> infinity
  | Ok config -> (
    match workload with
    | Tune_workload.Matmul { m; n; k } -> (
      match effective_tiles c workload with
      | None -> infinity
      | Some (tm, tn, tk) ->
        let inner_iters = m / tm * (n / tn) * (k / tk) in
        Heuristics.estimate_cycles config ~cost ~flow:c.Tune_space.cd_flow ~m ~n ~k ~tm
          ~tn ~tk
        -. opcode_structure_correction config ~cost ~inner_iters)
    | Tune_workload.Conv { ic; ih; iw; oc; fhw; stride } ->
      conv_predict ~cost ~flow:c.Tune_space.cd_flow ~ic ~ih ~iw ~oc ~fhw ~stride)

(* ------------------------------------------------------------------ *)
(* Population pruning                                                  *)
(* ------------------------------------------------------------------ *)

(* Pareto dominance among explicit tile variants of one
   (engine, flow, dma, double-buffer) group. Default-tile candidates
   (cd_tiles = None) are never dropped: they are the points the
   hand-picked baselines and the heuristics produce, and keeping them
   preserves the "grid covers the manual sweep" guarantee. *)
let dominance_prune ~cost workload kept =
  let group (c : Tune_space.candidate) =
    (c.Tune_space.cd_engine, c.Tune_space.cd_size, c.Tune_space.cd_flow,
     c.Tune_space.cd_dma_bytes, c.Tune_space.cd_double_buffer)
  in
  let score (c : Tune_space.candidate) =
    let cycles = predict ~cost workload c in
    let transfer =
      match (workload, effective_tiles c workload) with
      | Tune_workload.Matmul { m; n; k }, Some (tm, tn, tk) ->
        Heuristics.transfer_elems ~flow:c.Tune_space.cd_flow ~m ~n ~k ~tm ~tn ~tk
      | _ -> 0.0
    in
    (cycles, transfer)
  in
  let dominated_by (cyc_a, tr_a) (cyc_b, tr_b) =
    (* b dominates a *)
    cyc_b <= cyc_a && tr_b <= tr_a && (cyc_b < cyc_a || tr_b < tr_a)
  in
  List.partition
    (fun c ->
      match c.Tune_space.cd_tiles with
      | None -> true
      | Some _ ->
        let s = score c in
        not
          (List.exists
             (fun other ->
               other != c && group other = group c
               && (match other.Tune_space.cd_tiles with Some _ -> true | None -> false)
               && dominated_by s (score other))
             kept))
    kept

let prune ?(cost = Cost_model.default) workload candidates =
  let kept, dropped =
    List.fold_left
      (fun (kept, dropped) c ->
        match check workload c with
        | Ok _ -> (c :: kept, dropped)
        | Error reason -> (kept, (c, reason) :: dropped))
      ([], []) candidates
  in
  let kept = List.rev kept and dropped = List.rev dropped in
  let kept, dominated = dominance_prune ~cost workload kept in
  (kept, dropped @ List.map (fun c -> (c, Dominated)) dominated)
