(** Tuning workloads: the problems the autotuner optimises a
    configuration for.

    A workload is a single kernel shape (one matmul or one Conv2D
    layer); whole-model workloads ([resnet18], [tinybert]) expand into
    a list of named per-layer workloads that are tuned independently —
    the per-layer best-config table is exactly what a compiler driving
    a multi-layer model needs. *)

type t =
  | Matmul of { m : int; n : int; k : int }
  | Conv of { ic : int; ih : int; iw : int; oc : int; fhw : int; stride : int }

type named = { wl_label : string; wl_workload : t }

val dims : t -> int list
(** Canonical dimension list: [[m; n; k]] for matmul,
    [[ic; ih; iw; oc; fhw; stride]] for conv. Part of the tune-cache
    key. *)

val to_string : t -> string

val is_conv : t -> bool

val macs : t -> int
(** Multiply-accumulates of the workload (for throughput reporting). *)

val resnet18_layers : ?rows:int -> unit -> named list
(** The eleven ResNet-18 convolution layers as row-sampled proxies
    (default [rows = 2] output rows at full output width, the Fig. 16
    sampling): per-row work is homogeneous, so the config ranking on
    the proxy matches the full layer while tuning stays interactive. *)

val tinybert_layers : ?batch:int -> ?seq:int -> unit -> named list
(** The distinct TinyBERT MatMul shapes (default batch 1, seq 128),
    padded to the v4 granularity 16 as the accelerated path runs
    them. *)

val of_spec : string -> (named list, string) result
(** Parse a CLI workload spec:
    - ["matmul:M,N,K"]
    - ["conv:IC,IHW,OC,FHW"] or ["conv:IC,IHW,OC,FHW,STRIDE"]
    - ["resnet18"] (the row-sampled layer list)
    - ["tinybert"] (the padded MatMul shapes)
    - ["resnet18/<label>"] (a single layer, e.g.
      ["resnet18/56_64_3_64_1"])
    [Error] names the offending spec and the accepted forms. *)
