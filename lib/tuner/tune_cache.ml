let schema = "axi4mlir-tune-v1"

type outcome = Cycles of float | Rejected of string

type entry = {
  e_key : string;
  e_label : string;
  e_workload : string;
  e_candidate : Json.t;
  e_outcome : outcome;
}

type t = {
  table : (string, outcome) Hashtbl.t;
  mutable entries : entry list;  (** reverse insertion order *)
}

let create () = { table = Hashtbl.create 64; entries = [] }

let key workload config candidate =
  Benchdiff.config_hash
    (Json.Obj
       [
         ("dims", Json.List (List.map (fun d -> Json.Int d) (Tune_workload.dims workload)));
         ("conv", Json.Bool (Tune_workload.is_conv workload));
         ("accel", Accel_config.to_json config);
         ("candidate", Tune_space.candidate_to_json candidate);
       ])

let find t k = Hashtbl.find_opt t.table k

let add t ~key ~label ~workload ~candidate outcome =
  if not (Hashtbl.mem t.table key) then
    t.entries <-
      {
        e_key = key;
        e_label = label;
        e_workload = Tune_workload.to_string workload;
        e_candidate = Tune_space.candidate_to_json candidate;
        e_outcome = outcome;
      }
      :: t.entries;
  Hashtbl.replace t.table key outcome

let size t = Hashtbl.length t.table

let outcome_to_json = function
  | Cycles c -> Json.Obj [ ("cycles", Json.Float c) ]
  | Rejected reason -> Json.Obj [ ("rejected", Json.String reason) ]

let entry_to_json e =
  Json.Obj
    [
      ("key", Json.String e.e_key);
      ("label", Json.String e.e_label);
      ("workload", Json.String e.e_workload);
      ("candidate", e.e_candidate);
      ("outcome", outcome_to_json e.e_outcome);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("entries", Json.List (List.rev_map entry_to_json t.entries));
    ]

let save t path =
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:2 (to_json t));
  output_char oc '\n';
  close_out oc

let entry_of_json json =
  let outcome_json = Json.member "outcome" json in
  let outcome =
    match Json.member_opt "cycles" outcome_json with
    | Some c -> Cycles (Json.to_float c)
    | None -> Rejected (Json.to_str (Json.member "rejected" outcome_json))
  in
  {
    e_key = Json.to_str (Json.member "key" json);
    e_label = Json.to_str (Json.member "label" json);
    e_workload = Json.to_str (Json.member "workload" json);
    e_candidate = Json.member "candidate" json;
    e_outcome = outcome;
  }

let load path =
  if not (Sys.file_exists path) then Ok (create ())
  else
    match
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Json.of_string text
    with
    | exception Sys_error msg -> Error msg
    | exception Json.Parse_error msg ->
      Error (Printf.sprintf "%s: not a tune cache: %s" path msg)
    | json -> (
      match
        let got = Json.to_str (Json.member "schema" json) in
        if got <> schema then
          failwith (Printf.sprintf "schema %S, expected %S" got schema);
        List.map entry_of_json (Json.to_list (Json.member "entries" json))
      with
      | exception Failure msg -> Error (Printf.sprintf "%s: %s" path msg)
      | exception Json.Type_error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | entries ->
        let t = create () in
        List.iter
          (fun e ->
            if not (Hashtbl.mem t.table e.e_key) then t.entries <- e :: t.entries;
            Hashtbl.replace t.table e.e_key e.e_outcome)
          entries;
        Ok t)
