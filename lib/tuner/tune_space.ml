type candidate = {
  cd_engine : string;
  cd_size : int;
  cd_flow : string;
  cd_tiles : (int * int * int) option;
  cd_dma_bytes : int option;
  cd_double_buffer : bool;
}

let preset_name c = if c.cd_engine = "conv" then "conv2d" else Printf.sprintf "%s_%d" c.cd_engine c.cd_size

let candidate_to_string c =
  String.concat ""
    [
      preset_name c;
      "/";
      c.cd_flow;
      (match c.cd_tiles with
      | None -> ""
      | Some (tm, tn, tk) -> Printf.sprintf " tiles=%d,%d,%d" tm tn tk);
      (match c.cd_dma_bytes with
      | None -> ""
      | Some b -> Printf.sprintf " dma=%#x" b);
      (if c.cd_double_buffer then " db" else "");
    ]

(* Canonical candidate JSON: this participates in the tune-cache key,
   so the field set and order are stable (see Benchdiff's hash
   compatibility guarantee). *)
let candidate_to_json c =
  Json.Obj
    [
      ("engine", Json.String c.cd_engine);
      ("size", Json.Int c.cd_size);
      ("flow", Json.String c.cd_flow);
      ( "tiles",
        match c.cd_tiles with
        | None -> Json.Null
        | Some (tm, tn, tk) -> Json.List [ Json.Int tm; Json.Int tn; Json.Int tk ] );
      ( "dma_bytes",
        match c.cd_dma_bytes with None -> Json.Null | Some b -> Json.Int b );
      ("double_buffer", Json.Bool c.cd_double_buffer);
    ]

let config_of_candidate c =
  match Presets.find_by_name ~flow:c.cd_flow (preset_name c) with
  | Error _ as e -> e
  | Ok config -> (
    match c.cd_dma_bytes with
    | None -> Ok config
    | Some bytes ->
      Ok
        {
          config with
          Accel_config.dma =
            {
              config.Accel_config.dma with
              Accel_config.input_buffer_size = bytes;
              output_buffer_size = bytes;
            };
        })

let codegen_of_candidate c =
  {
    Axi4mlir.default_codegen with
    Axi4mlir.flow = Some c.cd_flow;
    tiles = (match c.cd_tiles with None -> None | Some (tm, tn, tk) -> Some [ tm; tn; tk ]);
    double_buffer = c.cd_double_buffer;
  }

type t = {
  sp_engines : (string * int) list;
  sp_flows : string list option;
  sp_tile_search : bool;
  sp_dma_bytes : int option list;
  sp_double_buffer : bool list;
}

let default =
  {
    sp_engines =
      List.concat_map (fun v -> [ (v, 8); (v, 16) ]) [ "v1"; "v2"; "v3"; "v4" ];
    sp_flows = None;
    sp_tile_search = true;
    sp_dma_bytes = [ None ];
    sp_double_buffer = [ false; true ];
  }

let fig13 =
  {
    sp_engines = List.concat_map (fun v -> [ (v, 8); (v, 16) ]) [ "v1"; "v2"; "v3" ];
    sp_flows = None;
    sp_tile_search = false;
    sp_dma_bytes = [ None ];
    sp_double_buffer = [ false ];
  }

let quick =
  {
    sp_engines = [ ("v3", 16); ("v4", 16) ];
    sp_flows = Some [ "Ns"; "Cs" ];
    sp_tile_search = false;
    sp_dma_bytes = [ None ];
    sp_double_buffer = [ false ];
  }

let restrict_to_preset t (config : Accel_config.t) =
  match config.Accel_config.engine with
  | Accel_config.Conv_engine -> { t with sp_engines = [] }
  | Accel_config.Matmul_engine (version, size) ->
    { t with sp_engines = [ (Accel_matmul.version_to_string version, size) ] }

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

let engine_flows = function
  | "conv" -> [ "Ws"; "Os"; "Ns" ]
  | v -> (
    match Accel_matmul.version_of_string v with
    | Some version -> Presets.matmul_flows version
    | None -> [])

let flows_for t engine =
  let supported = engine_flows engine in
  match t.sp_flows with
  | None -> supported
  | Some restricted -> List.filter (fun f -> List.mem f restricted) supported

let is_flexible engine = engine = "v4"

(* Tile variants on flexible engines: every feasible shape from the
   heuristics enumeration, plus None (the engine's own square tile,
   also the only option on fixed-size engines). *)
let tile_variants t engine size workload =
  match workload with
  | Tune_workload.Conv _ -> [ None ]
  | Tune_workload.Matmul { m; n; k } ->
    if not (t.sp_tile_search && is_flexible engine) then [ None ]
    else
      let preset = Presets.matmul ~version:Accel_matmul.V4 ~size () in
      None :: List.map (fun tls -> Some tls) (Heuristics.candidate_tiles preset ~m ~n ~k)

let dimensions t workload =
  let engines =
    if Tune_workload.is_conv workload then [ "conv2d" ]
    else List.map (fun (v, s) -> Printf.sprintf "%s_%d" v s) t.sp_engines
  in
  let flows =
    let all =
      if Tune_workload.is_conv workload then flows_for t "conv"
      else
        List.sort_uniq compare
          (List.concat_map (fun (v, _) -> flows_for t v) t.sp_engines)
    in
    all
  in
  let tiles =
    if Tune_workload.is_conv workload || not t.sp_tile_search then [ "engine square tile" ]
    else [ "engine square tile"; "feasible (tm,tn,tk) shapes on flexible engines" ]
  in
  let dma =
    List.map
      (function None -> "preset default" | Some b -> Printf.sprintf "%#x bytes" b)
      t.sp_dma_bytes
  in
  let db = List.map string_of_bool t.sp_double_buffer in
  [
    ("engine", engines);
    ("opcode_flow", flows);
    ("tiles", tiles);
    ("dma_buffer", dma);
    ("double_buffer", db);
  ]

let enumerate t workload =
  let engines =
    if Tune_workload.is_conv workload then [ ("conv", 0) ] else t.sp_engines
  in
  List.concat_map
    (fun (engine, size) ->
      List.concat_map
        (fun flow ->
          List.concat_map
            (fun tiles ->
              List.concat_map
                (fun dma ->
                  List.map
                    (fun db ->
                      {
                        cd_engine = engine;
                        cd_size = size;
                        cd_flow = flow;
                        cd_tiles = tiles;
                        cd_dma_bytes = dma;
                        cd_double_buffer = db;
                      })
                    t.sp_double_buffer)
                t.sp_dma_bytes)
            (tile_variants t engine size workload))
        (flows_for t engine))
    engines
