(** Persistent tuning-result cache.

    Every compile+simulate evaluation is stored under a key derived
    from everything that determines its outcome: the workload
    dimensions, the fully-instantiated accelerator configuration and
    the candidate knobs. A warm re-run of the same tuning job then
    performs {e zero} pipeline evaluations — the
    ["tuner_evaluations"] metrics counter stays at 0 (asserted in the
    test suite and by [axi4mlir_tune --assert-warm]).

    On-disk format: schema ["axi4mlir-tune-v1"], a JSON object holding
    one entry per key with the human-readable context (workload label,
    dims, candidate) and the outcome (cycles, or a rejection reason).
    Keys use {!Benchdiff.config_hash}, which carries a documented
    compatibility guarantee — see [benchdiff.mli]. Unknown schemas are
    refused rather than silently reinterpreted. *)

val schema : string
(** ["axi4mlir-tune-v1"]. *)

type outcome =
  | Cycles of float  (** simulated host cycles of the evaluated run *)
  | Rejected of string  (** the pipeline refused the config (reason) *)

type t

val create : unit -> t
(** An empty in-memory cache (no backing file until {!save}). *)

val key :
  Tune_workload.t -> Accel_config.t -> Tune_space.candidate -> string
(** The cache key: {!Benchdiff.config_hash} over the canonical JSON of
    the workload dims, [Accel_config.to_json] and
    {!Tune_space.candidate_to_json}. *)

val find : t -> string -> outcome option

val add :
  t ->
  key:string ->
  label:string ->
  workload:Tune_workload.t ->
  candidate:Tune_space.candidate ->
  outcome ->
  unit
(** Insert (last write wins). The label/workload/candidate are stored
    alongside for human inspection of the cache file only — identity is
    the key. *)

val size : t -> int

val load : string -> (t, string) result
(** Read a cache file. A missing file yields an empty cache (first run);
    unreadable JSON or a wrong schema is an [Error]. *)

val save : t -> string -> unit
(** Write the cache (pretty-printed, stable entry order by first
    insertion; loaded entries keep their order). *)
