(** The autotuner driver: enumerate -> prune -> search -> compare
    against the heuristic default.

    For each workload the tuner:

    + enumerates the candidate cross product of the search space;
    + statically prunes invalid, infeasible and Pareto-dominated
      candidates ({!Tune_prune}) — no simulation spent;
    + runs the chosen {!Tune_strategy} over the survivors, where each
      evaluation first consults the persistent {!Tune_cache} (a warm
      cache means zero pipeline runs) and otherwise pays for one
      compile+simulate ({!Tune_eval});
    + measures the {!Heuristics.choose} default for the workload and
      takes the better of the two — the returned configuration is
      {e never} slower than the heuristic fallback, by construction.

    Observability: the ["tuner_candidates"], ["tuner_pruned"] (labelled
    by reason), ["tuner_evaluations"], ["tuner_cache_hits"] and
    ["tuner_rejected"] counters land in {!Metrics.default}; an
    [Applied] remark names each workload's winning configuration and an
    [Analysis] remark the baseline comparison; with a tracer, tuning
    progress shows as a dedicated "autotuner" track in the Chrome
    trace ({!Trace.tuner_track}). *)

type options = {
  strategy : Tune_strategy.t;
  space : Tune_space.t;
  cache : Tune_cache.t option;  (** consulted and filled when present *)
  host : Host_config.t option;  (** simulated host; default PYNQ-Z2 *)
  tracer : Trace.t option;  (** tuning-progress tracer (tuner track) *)
  cost : Cost_model.t;  (** prediction model for pruning/seeding *)
  seed_from_bottleneck : bool;
      (** when true, the baseline candidate is measured first and the
          perf doctor's binding-resource diagnosis of that run nudges
          the greedy strategy's predicted ranking (DMA-bound: favour
          double buffering; host-bound: favour the largest engines).
          Only a {e fresh} baseline evaluation seeds — a warm cache
          carries no diagnosis, so warm-cache runs are unaffected and
          still execute zero simulations. Default [false]. *)
}

val default_options : options
(** Grid over {!Tune_space.default}, no cache, default host and cost
    model, no tracer, no bottleneck seeding. *)

val baseline_candidate :
  ?cost:Cost_model.t -> Tune_space.t -> Tune_workload.t -> Tune_space.candidate option
(** The candidate {!Heuristics.choose} would pick today: for matmul,
    the space's preferred engine (largest size; flexible wins ties)
    under the heuristic's flow/tiles; for conv, the Conv2D engine's
    default flow. [None] when the heuristic finds no feasible tiling. *)

val tune_workload : options -> Tune_workload.named -> Tune_report.result
(** Tune one workload. Never raises on rejected candidates — they are
    recorded in the result. *)

val tune : options -> Tune_workload.named list -> Tune_report.t
(** Tune a list of workloads (a whole model, fig-13-style sweep, ...)
    into one report. *)
