(** Ready-made accelerator configurations for the paper's evaluation
    (Table I MatMul engines and the Sec. IV-D Conv2D engine), including
    their opcode maps and named dataflows.

    MatMul flow names follow the paper: ["Ns"] (nothing stationary),
    ["As"]/["Bs"] (input stationary), ["Cs"] (output stationary).
    Conv flow names: ["Ws"] (weights stationary per output channel,
    per-pixel receive — the Fig. 15b structure), ["Os"] (weights
    stationary, whole output slice received once per channel), and
    ["Ns"] (no reuse). *)

val matmul : version:Accel_matmul.version -> size:int -> ?flow:string -> unit -> Accel_config.t
(** A Table I configuration. Default flow: the richest the version
    supports is NOT assumed — it defaults to ["Ns"], matching the
    paper's baselines. Raises [Failure] when [flow] is not available on
    the version. *)

val conv : ?flow:string -> unit -> Accel_config.t
(** The Conv2D engine; default flow ["Ws"]. *)

val matmul_flows : Accel_matmul.version -> string list
(** Flow names supported by a version: v1 has only Ns; v2 adds As/Bs;
    v3 and v4 add Cs. *)

val possible_reuse : Accel_matmul.version -> string
(** Table I "Possible Reuse" column text. *)

val opcode_summary : Accel_matmul.version -> string
(** Table I "Opcode(s)" column text. *)

val table1_sizes : int list
(** The evaluated accelerator sizes: [[4; 8; 16]]. *)

val names : string list
(** Every preset name: the Table I matmul engines as
    ["<version>_<size>"] (["v1_4"] ... ["v4_16"]) plus ["conv2d"]. *)

val find_by_name : ?flow:string -> string -> (Accel_config.t, string) result
(** Look a preset up by name (["v3_16"], ["conv2d"], ...), optionally
    selecting a non-default opcode flow. [Error] messages are
    actionable: an unknown name lists every valid preset, an unknown
    flow lists the flows the preset supports. *)
