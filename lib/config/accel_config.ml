type dma_config = {
  dma_id : int;
  input_address : int;
  input_buffer_size : int;
  output_address : int;
  output_buffer_size : int;
}

type engine_kind = Matmul_engine of Accel_matmul.version * int | Conv_engine

type t = {
  accel_name : string;
  engine : engine_kind;
  op_kind : string;
  data_type : Ty.dtype;
  accel_dims : int list;
  flexible : bool;
  buffer_capacity_elems : int;
  frequency_mhz : float;
  ops_per_cycle : float;
  dma : dma_config;
  opcode_map : Opcode.map;
  opcode_flows : (string * Opcode.flow) list;
  selected_flow : string;
  init_opcodes : string list;
}

let n_args t =
  match t.op_kind with
  | "matmul" | "conv_2d_nchw_fchw" -> 3
  | other -> failwith (Printf.sprintf "Accel_config: unknown op kind %s" other)

let flow_exn t name =
  match List.assoc_opt name t.opcode_flows with
  | Some f -> f
  | None ->
    failwith
      (Printf.sprintf "Accel_config %s: no flow named %s (available: %s)" t.accel_name
         name
         (String.concat ", " (List.map fst t.opcode_flows)))

let selected_flow_exn t = flow_exn t t.selected_flow

let iteration_dims t =
  match t.op_kind with
  | "matmul" -> 3
  | "conv_2d_nchw_fchw" -> 7
  | other -> failwith (Printf.sprintf "Accel_config: unknown op kind %s" other)

let ( let* ) r f = Result.bind r f

let validate t =
  let* () =
    match t.op_kind with
    | "matmul" | "conv_2d_nchw_fchw" -> Ok ()
    | other -> Error (Printf.sprintf "unknown op kind %s" other)
  in
  let* () =
    if List.length t.accel_dims = iteration_dims t then Ok ()
    else
      Error
        (Printf.sprintf "accel_dims must have %d entries for %s" (iteration_dims t)
           t.op_kind)
  in
  let* () = Opcode.validate_map ~n_args:(n_args t) t.opcode_map in
  let rec check_flows = function
    | [] -> Ok ()
    | (name, flow) :: rest ->
      let* () =
        Result.map_error
          (fun e -> Printf.sprintf "flow %s: %s" name e)
          (Opcode.validate_flow t.opcode_map flow)
      in
      check_flows rest
  in
  let* () = check_flows t.opcode_flows in
  let* () =
    if List.mem_assoc t.selected_flow t.opcode_flows then Ok ()
    else Error (Printf.sprintf "selected flow %s is not defined" t.selected_flow)
  in
  let* () =
    let missing =
      List.filter (fun k -> Opcode.find t.opcode_map k = None) t.init_opcodes
    in
    if missing = [] then Ok ()
    else Error (Printf.sprintf "undefined init opcodes: %s" (String.concat ", " missing))
  in
  let* () =
    match t.engine with
    | Matmul_engine (version, size) ->
      let cap = Accel_matmul.buffer_capacity_elems version ~size in
      if t.buffer_capacity_elems <= cap then Ok ()
      else
        Error
          (Printf.sprintf "buffer_capacity_elems %d exceeds the %s_%d engine's %d"
             t.buffer_capacity_elems
             (Accel_matmul.version_to_string version)
             size cap)
    | Conv_engine ->
      if t.buffer_capacity_elems <= Accel_conv.buffer_capacity_elems then Ok ()
      else Error "buffer_capacity_elems exceeds the conv engine's capacity"
  in
  if t.dma.input_buffer_size <= 0 || t.dma.output_buffer_size <= 0 then
    Error "DMA buffer sizes must be positive"
  else Ok ()

let make_device ?tracer t =
  match t.engine with
  | Matmul_engine (version, size) -> Accel_matmul.create ?tracer ~version ~size ()
  | Conv_engine ->
    Accel_conv.create ~ops_per_cycle:t.ops_per_cycle ?tracer
      ~capacity_elems:t.buffer_capacity_elems ()

let attach soc t =
  (* Share the SoC's tracer so device-level events (tile computations,
     patch inner products) land in the same trace as the host spans. *)
  Soc.attach_engine soc ~dma_id:t.dma.dma_id
    ~device:(make_device ~tracer:soc.Soc.tracer t)
    ~in_capacity_words:(t.dma.input_buffer_size / 4)
    ~out_capacity_words:(t.dma.output_buffer_size / 4)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

(* Field accessor with a path-qualified structured error: a missing
   field, a type mismatch, or a conversion failure (bad opcode syntax,
   unknown engine name, ...) all report as "accel_config.FIELD: WHY". *)
let field ?(path = "accel_config") name json convert =
  match Json.member_opt name json with
  | None -> Error (Printf.sprintf "%s.%s: missing field" path name)
  | Some v -> (
    match convert v with
    | ok -> Ok ok
    | exception Json.Type_error msg -> Error (Printf.sprintf "%s.%s: %s" path name msg)
    | exception Failure msg -> Error (Printf.sprintf "%s.%s: %s" path name msg)
    | exception Opcode.Syntax_error msg -> Error (Printf.sprintf "%s.%s: %s" path name msg))

let engine_of_json json =
  let* name = field "engine" json Json.to_str in
  match name with
  | "conv" -> Ok Conv_engine
  | v -> (
    match Accel_matmul.version_of_string v with
    | Some version ->
      let* size = field "size" json Json.to_int in
      Ok (Matmul_engine (version, size))
    | None -> Error (Printf.sprintf "accel_config.engine: unknown engine %s" v))

let dma_of_json json =
  let path = "accel_config.dma" in
  let* dma_id = field ~path "id" json Json.to_int in
  let* input_address = field ~path "input_address" json Json.to_int in
  let* input_buffer_size = field ~path "input_buffer_size" json Json.to_int in
  let* output_address = field ~path "output_address" json Json.to_int in
  let* output_buffer_size = field ~path "output_buffer_size" json Json.to_int in
  Ok { dma_id; input_address; input_buffer_size; output_address; output_buffer_size }

let of_json_result json =
  match json with
  | Json.Obj _ ->
    let* accel_name = field "name" json Json.to_str in
    let* engine = engine_of_json json in
    let* op_kind = field "operation" json Json.to_str in
    let* data_type_name = field "data_type" json Json.to_str in
    let* data_type =
      match Ty.dtype_of_string data_type_name with
      | Some d -> Ok d
      | None ->
        Error (Printf.sprintf "accel_config.data_type: unknown data type %s" data_type_name)
    in
    let* accel_dims =
      field "dims" json (fun v -> List.map Json.to_int (Json.to_list v))
    in
    let* flexible =
      match Json.member_opt "flexible" json with
      | None -> Ok false
      | Some v -> (
        match Json.to_bool v with
        | b -> Ok b
        | exception Json.Type_error msg ->
          Error (Printf.sprintf "accel_config.flexible: %s" msg))
    in
    let* buffer_capacity_elems = field "buffer_elems" json Json.to_int in
    let* frequency_mhz = field "frequency_mhz" json Json.to_float in
    let* ops_per_cycle = field "ops_per_cycle" json Json.to_float in
    let* dma_json = field "dma" json (fun v -> v) in
    let* dma = dma_of_json dma_json in
    let* opcode_map =
      field "opcode_map" json (fun v -> Opcode.parse_map (Json.to_str v))
    in
    let* opcode_flows =
      field "opcode_flows" json (fun v ->
          List.map
            (fun (name, f) -> (name, Opcode.parse_flow (Json.to_str f)))
            (Json.to_obj v))
    in
    let* selected_flow = field "flow" json Json.to_str in
    let* init_opcodes =
      field "init_opcodes" json (fun v ->
          Opcode.flow_opcodes (Opcode.parse_flow (Json.to_str v)))
    in
    let config =
      {
        accel_name;
        engine;
        op_kind;
        data_type;
        accel_dims;
        flexible;
        buffer_capacity_elems;
        frequency_mhz;
        ops_per_cycle;
        dma;
        opcode_map;
        opcode_flows;
        selected_flow;
        init_opcodes;
      }
    in
    (match validate config with
    | Ok () -> Ok config
    | Error msg -> Error (Printf.sprintf "accel_config %s: %s" accel_name msg))
  | _ -> Error "accel_config: expected a JSON object"

let of_json json =
  match of_json_result json with Ok config -> config | Error msg -> failwith msg

let to_json t =
  let engine_fields =
    match t.engine with
    | Matmul_engine (version, size) ->
      [
        ("engine", Json.String (Accel_matmul.version_to_string version));
        ("size", Json.Int size);
      ]
    | Conv_engine -> [ ("engine", Json.String "conv") ]
  in
  Json.Obj
    (( ("name", Json.String t.accel_name) :: engine_fields )
    @ [
        ("operation", Json.String t.op_kind);
        ("data_type", Json.String (Ty.dtype_to_string t.data_type));
        ("dims", Json.List (List.map (fun d -> Json.Int d) t.accel_dims));
        ("flexible", Json.Bool t.flexible);
        ("buffer_elems", Json.Int t.buffer_capacity_elems);
        ("frequency_mhz", Json.Float t.frequency_mhz);
        ("ops_per_cycle", Json.Float t.ops_per_cycle);
        ( "dma",
          Json.Obj
            [
              ("id", Json.Int t.dma.dma_id);
              ("input_address", Json.Int t.dma.input_address);
              ("input_buffer_size", Json.Int t.dma.input_buffer_size);
              ("output_address", Json.Int t.dma.output_address);
              ("output_buffer_size", Json.Int t.dma.output_buffer_size);
            ] );
        ("opcode_map", Json.String (Opcode.map_to_string t.opcode_map));
        ( "opcode_flows",
          Json.Obj
            (List.map
               (fun (name, flow) -> (name, Json.String (Opcode.flow_to_string flow)))
               t.opcode_flows) );
        ("flow", Json.String t.selected_flow);
        ( "init_opcodes",
          Json.String
            (Opcode.flow_to_string (List.map (fun k -> Opcode.Op k) t.init_opcodes)) );
      ])

let with_flow t name =
  let updated = { t with selected_flow = name } in
  ignore (flow_exn t name);
  updated
