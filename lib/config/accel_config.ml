type dma_config = {
  dma_id : int;
  input_address : int;
  input_buffer_size : int;
  output_address : int;
  output_buffer_size : int;
}

type engine_kind = Matmul_engine of Accel_matmul.version * int | Conv_engine

type t = {
  accel_name : string;
  engine : engine_kind;
  op_kind : string;
  data_type : Ty.dtype;
  accel_dims : int list;
  flexible : bool;
  buffer_capacity_elems : int;
  frequency_mhz : float;
  ops_per_cycle : float;
  dma : dma_config;
  opcode_map : Opcode.map;
  opcode_flows : (string * Opcode.flow) list;
  selected_flow : string;
  init_opcodes : string list;
}

let n_args t =
  match t.op_kind with
  | "matmul" | "conv_2d_nchw_fchw" -> 3
  | other -> failwith (Printf.sprintf "Accel_config: unknown op kind %s" other)

let flow_exn t name =
  match List.assoc_opt name t.opcode_flows with
  | Some f -> f
  | None ->
    failwith
      (Printf.sprintf "Accel_config %s: no flow named %s (available: %s)" t.accel_name
         name
         (String.concat ", " (List.map fst t.opcode_flows)))

let selected_flow_exn t = flow_exn t t.selected_flow

let iteration_dims t =
  match t.op_kind with
  | "matmul" -> 3
  | "conv_2d_nchw_fchw" -> 7
  | other -> failwith (Printf.sprintf "Accel_config: unknown op kind %s" other)

let ( let* ) r f = Result.bind r f

let validate t =
  let* () =
    match t.op_kind with
    | "matmul" | "conv_2d_nchw_fchw" -> Ok ()
    | other -> Error (Printf.sprintf "unknown op kind %s" other)
  in
  let* () =
    if List.length t.accel_dims = iteration_dims t then Ok ()
    else
      Error
        (Printf.sprintf "accel_dims must have %d entries for %s" (iteration_dims t)
           t.op_kind)
  in
  let* () = Opcode.validate_map ~n_args:(n_args t) t.opcode_map in
  let rec check_flows = function
    | [] -> Ok ()
    | (name, flow) :: rest ->
      let* () =
        Result.map_error
          (fun e -> Printf.sprintf "flow %s: %s" name e)
          (Opcode.validate_flow t.opcode_map flow)
      in
      check_flows rest
  in
  let* () = check_flows t.opcode_flows in
  let* () =
    if List.mem_assoc t.selected_flow t.opcode_flows then Ok ()
    else Error (Printf.sprintf "selected flow %s is not defined" t.selected_flow)
  in
  let* () =
    let missing =
      List.filter (fun k -> Opcode.find t.opcode_map k = None) t.init_opcodes
    in
    if missing = [] then Ok ()
    else Error (Printf.sprintf "undefined init opcodes: %s" (String.concat ", " missing))
  in
  let* () =
    match t.engine with
    | Matmul_engine (version, size) ->
      let cap = Accel_matmul.buffer_capacity_elems version ~size in
      if t.buffer_capacity_elems <= cap then Ok ()
      else
        Error
          (Printf.sprintf "buffer_capacity_elems %d exceeds the %s_%d engine's %d"
             t.buffer_capacity_elems
             (Accel_matmul.version_to_string version)
             size cap)
    | Conv_engine ->
      if t.buffer_capacity_elems <= Accel_conv.buffer_capacity_elems then Ok ()
      else Error "buffer_capacity_elems exceeds the conv engine's capacity"
  in
  if t.dma.input_buffer_size <= 0 || t.dma.output_buffer_size <= 0 then
    Error "DMA buffer sizes must be positive"
  else Ok ()

let make_device ?tracer t =
  match t.engine with
  | Matmul_engine (version, size) -> Accel_matmul.create ?tracer ~version ~size ()
  | Conv_engine -> Accel_conv.create ~ops_per_cycle:t.ops_per_cycle ?tracer ()

let attach soc t =
  (* Share the SoC's tracer so device-level events (tile computations,
     patch inner products) land in the same trace as the host spans. *)
  Soc.attach_engine soc ~dma_id:t.dma.dma_id
    ~device:(make_device ~tracer:soc.Soc.tracer t)
    ~in_capacity_words:(t.dma.input_buffer_size / 4)
    ~out_capacity_words:(t.dma.output_buffer_size / 4)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let engine_of_json json =
  match Json.to_str (Json.member "engine" json) with
  | "conv" -> Conv_engine
  | v -> (
    match Accel_matmul.version_of_string v with
    | Some version -> Matmul_engine (version, Json.to_int (Json.member "size" json))
    | None -> failwith (Printf.sprintf "Accel_config: unknown engine %s" v))

let dma_of_json json =
  {
    dma_id = Json.to_int (Json.member "id" json);
    input_address = Json.to_int (Json.member "input_address" json);
    input_buffer_size = Json.to_int (Json.member "input_buffer_size" json);
    output_address = Json.to_int (Json.member "output_address" json);
    output_buffer_size = Json.to_int (Json.member "output_buffer_size" json);
  }

let of_json json =
  let data_type_name = Json.to_str (Json.member "data_type" json) in
  let data_type =
    match Ty.dtype_of_string data_type_name with
    | Some d -> d
    | None -> failwith (Printf.sprintf "Accel_config: unknown data type %s" data_type_name)
  in
  let config =
    {
      accel_name = Json.to_str (Json.member "name" json);
      engine = engine_of_json json;
      op_kind = Json.to_str (Json.member "operation" json);
      data_type;
      accel_dims = List.map Json.to_int (Json.to_list (Json.member "dims" json));
      flexible =
        (match Json.member_opt "flexible" json with
        | Some v -> Json.to_bool v
        | None -> false);
      buffer_capacity_elems = Json.to_int (Json.member "buffer_elems" json);
      frequency_mhz = Json.to_float (Json.member "frequency_mhz" json);
      ops_per_cycle = Json.to_float (Json.member "ops_per_cycle" json);
      dma = dma_of_json (Json.member "dma" json);
      opcode_map = Opcode.parse_map (Json.to_str (Json.member "opcode_map" json));
      opcode_flows =
        List.map
          (fun (name, v) -> (name, Opcode.parse_flow (Json.to_str v)))
          (Json.to_obj (Json.member "opcode_flows" json));
      selected_flow = Json.to_str (Json.member "flow" json);
      init_opcodes =
        Opcode.flow_opcodes (Opcode.parse_flow (Json.to_str (Json.member "init_opcodes" json)));
    }
  in
  (match validate config with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Accel_config %s: %s" config.accel_name msg));
  config

let to_json t =
  let engine_fields =
    match t.engine with
    | Matmul_engine (version, size) ->
      [
        ("engine", Json.String (Accel_matmul.version_to_string version));
        ("size", Json.Int size);
      ]
    | Conv_engine -> [ ("engine", Json.String "conv") ]
  in
  Json.Obj
    (( ("name", Json.String t.accel_name) :: engine_fields )
    @ [
        ("operation", Json.String t.op_kind);
        ("data_type", Json.String (Ty.dtype_to_string t.data_type));
        ("dims", Json.List (List.map (fun d -> Json.Int d) t.accel_dims));
        ("flexible", Json.Bool t.flexible);
        ("buffer_elems", Json.Int t.buffer_capacity_elems);
        ("frequency_mhz", Json.Float t.frequency_mhz);
        ("ops_per_cycle", Json.Float t.ops_per_cycle);
        ( "dma",
          Json.Obj
            [
              ("id", Json.Int t.dma.dma_id);
              ("input_address", Json.Int t.dma.input_address);
              ("input_buffer_size", Json.Int t.dma.input_buffer_size);
              ("output_address", Json.Int t.dma.output_address);
              ("output_buffer_size", Json.Int t.dma.output_buffer_size);
            ] );
        ("opcode_map", Json.String (Opcode.map_to_string t.opcode_map));
        ( "opcode_flows",
          Json.Obj
            (List.map
               (fun (name, flow) -> (name, Json.String (Opcode.flow_to_string flow)))
               t.opcode_flows) );
        ("flow", Json.String t.selected_flow);
        ( "init_opcodes",
          Json.String
            (Opcode.flow_to_string (List.map (fun k -> Opcode.Op k) t.init_opcodes)) );
      ])

let with_flow t name =
  let updated = { t with selected_flow = name } in
  ignore (flow_exn t name);
  updated
