open Opcode

let lit v = Send_literal v

(* Opcode maps per Table I. Argument numbering follows the
   linalg.generic operand order: 0 = A, 1 = B, 2 = C. *)

let reset_entry = { key = "reset"; actions = [ lit Isa.reset ] }

let v1_map =
  [
    reset_entry;
    { key = "sAsBcCrC"; actions = [ lit Isa.mm_fused; Send 0; Send 1; Recv 2 ] };
  ]

let v2_map =
  [
    reset_entry;
    { key = "sA"; actions = [ lit Isa.mm_load_a; Send 0 ] };
    { key = "sB"; actions = [ lit Isa.mm_load_b; Send 1 ] };
    { key = "cCrC"; actions = [ lit Isa.mm_compute_drain; Recv 2 ] };
  ]

let v3_map =
  [
    reset_entry;
    { key = "sA"; actions = [ lit Isa.mm_load_a; Send 0 ] };
    { key = "sB"; actions = [ lit Isa.mm_load_b; Send 1 ] };
    { key = "cC"; actions = [ lit Isa.mm_compute ] };
    { key = "rC"; actions = [ lit Isa.mm_drain; Recv 2 ] };
  ]

(* v4 adds the runtime tile configuration opcodes; the host-code
   generator folds send_dim at init scope to the planned tile sizes. *)
let v4_map =
  v3_map
  @ [
      { key = "cfgM"; actions = [ lit Isa.mm_set_tm; Send_dim (0, 0) ] };
      { key = "cfgN"; actions = [ lit Isa.mm_set_tn; Send_dim (1, 1) ] };
      { key = "cfgK"; actions = [ lit Isa.mm_set_tk; Send_dim (0, 1) ] };
    ]

let parse f = Opcode.parse_flow f

let v1_flows = [ ("Ns", parse "(sAsBcCrC)") ]

let v2_flows =
  [
    ("Ns", parse "(sA sB cCrC)");
    ("As", parse "(sA (sB cCrC))");
    ("Bs", parse "(sB (sA cCrC))");
  ]

let v34_flows =
  [
    ("Ns", parse "(sA sB cC rC)");
    ("As", parse "(sA (sB cC rC))");
    ("Bs", parse "(sB (sA cC rC))");
    ("Cs", parse "((sA sB cC) rC)");
  ]

let map_for = function
  | Accel_matmul.V1 -> v1_map
  | Accel_matmul.V2 -> v2_map
  | Accel_matmul.V3 -> v3_map
  | Accel_matmul.V4 -> v4_map

let flows_for = function
  | Accel_matmul.V1 -> v1_flows
  | Accel_matmul.V2 -> v2_flows
  | Accel_matmul.V3 | Accel_matmul.V4 -> v34_flows

let matmul_flows version = List.map fst (flows_for version)

let init_for = function
  | Accel_matmul.V1 | Accel_matmul.V2 | Accel_matmul.V3 -> [ "reset" ]
  | Accel_matmul.V4 -> [ "reset"; "cfgM"; "cfgN"; "cfgK" ]

let possible_reuse = function
  | Accel_matmul.V1 -> "Nothing"
  | Accel_matmul.V2 -> "Inputs"
  | Accel_matmul.V3 -> "Ins/Out"
  | Accel_matmul.V4 -> "Ins/Out (flex size)"

let opcode_summary = function
  | Accel_matmul.V1 -> "sAsBcCrC"
  | Accel_matmul.V2 -> "sA, sB, cCrC"
  | Accel_matmul.V3 -> "sA, sB, cC, rC"
  | Accel_matmul.V4 -> "sA, sB, cC, rC"

let table1_sizes = [ 4; 8; 16 ]

(* The paper's Fig. 6a DMA parameters: 64 KiB input and output windows. *)
let dma_config ~dma_id =
  {
    Accel_config.dma_id;
    input_address = 0x42;
    input_buffer_size = 0xFF00;
    output_address = 0xFF42;
    output_buffer_size = 0xFF00;
  }

let matmul ~version ~size ?(flow = "Ns") () =
  let flows = flows_for version in
  if not (List.mem_assoc flow flows) then
    failwith
      (Printf.sprintf "Presets.matmul: flow %s is not supported by %s accelerators" flow
         (Accel_matmul.version_to_string version));
  let config =
    {
      Accel_config.accel_name =
        Printf.sprintf "%s_%d" (Accel_matmul.version_to_string version) size;
      engine = Accel_config.Matmul_engine (version, size);
      op_kind = "matmul";
      data_type = Ty.F32;
      accel_dims = [ size; size; size ];
      flexible = (version = Accel_matmul.V4);
      buffer_capacity_elems = Accel_matmul.buffer_capacity_elems version ~size;
      frequency_mhz = 200.0;
      ops_per_cycle = Accel_matmul.ops_per_cycle_for_size size;
      dma = dma_config ~dma_id:0;
      opcode_map = map_for version;
      opcode_flows = flows;
      selected_flow = flow;
      init_opcodes = init_for version;
    }
  in
  (match Accel_config.validate config with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Presets.matmul: invalid preset: %s" msg));
  config

let conv_map =
  [
    reset_entry;
    { key = "cfgF"; actions = [ lit Isa.cv_set_fhw; Send_dim (1, 2) ] };
    { key = "cfgC"; actions = [ lit Isa.cv_set_ic; Send_dim (0, 1) ] };
    { key = "sW"; actions = [ lit Isa.cv_load_w; Send 1 ] };
    { key = "sI"; actions = [ lit Isa.cv_patch; Send 0 ] };
    { key = "rO"; actions = [ lit Isa.cv_drain; Recv 2 ] };
  ]

let conv_flows =
  [
    ("Ws", parse "(sW ((sI rO)))");
    ("Os", parse "(sW ((sI)) rO)");
    ("Ns", parse "(sW sI rO)");
  ]

let names =
  List.concat_map
    (fun version ->
      List.map
        (fun size -> Printf.sprintf "%s_%d" (Accel_matmul.version_to_string version) size)
        table1_sizes)
    [ Accel_matmul.V1; Accel_matmul.V2; Accel_matmul.V3; Accel_matmul.V4 ]
  @ [ "conv2d" ]

let conv ?(flow = "Ws") () =
  if not (List.mem_assoc flow conv_flows) then
    failwith (Printf.sprintf "Presets.conv: unknown flow %s" flow);
  let config =
    {
      Accel_config.accel_name = "conv2d";
      engine = Accel_config.Conv_engine;
      op_kind = "conv_2d_nchw_fchw";
      data_type = Ty.F32;
      (* (n, f, oh, ow, c, fh, fw): host loops of 1 over n/f/oh/ow; the
         engine absorbs c, fh, fw up to its buffer capacity. *)
      accel_dims = [ 1; 1; 1; 1; 0; 0; 0 ];
      flexible = true;
      buffer_capacity_elems = Accel_conv.buffer_capacity_elems;
      frequency_mhz = 200.0;
      ops_per_cycle = Accel_conv.default_ops_per_cycle;
      dma = dma_config ~dma_id:0;
      opcode_map = conv_map;
      opcode_flows = conv_flows;
      selected_flow = flow;
      init_opcodes = [ "reset"; "cfgF"; "cfgC" ];
    }
  in
  (match Accel_config.validate config with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Presets.conv: invalid preset: %s" msg));
  config

(* Name-based lookup used by the CLI tools' --preset flags. The error
   messages enumerate the valid alternatives so a typo is a one-round
   fix, not an archaeology session. *)
let find_by_name ?flow name =
  if not (List.mem name names) then
    Error
      (Printf.sprintf "unknown preset %s (valid presets: %s)" name
         (String.concat ", " names))
  else
    let flows_available =
      if name = "conv2d" then List.map fst conv_flows
      else
        match String.split_on_char '_' name with
        | v :: _ -> (
          match Accel_matmul.version_of_string v with
          | Some version -> matmul_flows version
          | None -> [])
        | [] -> []
    in
    match flow with
    | Some f when not (List.mem f flows_available) ->
      Error
        (Printf.sprintf "preset %s does not support flow %s (supported flows: %s)" name f
           (String.concat ", " flows_available))
    | _ -> (
      if name = "conv2d" then Ok (conv ?flow ())
      else
        match String.split_on_char '_' name with
        | [ v; s ] -> (
          match (Accel_matmul.version_of_string v, int_of_string_opt s) with
          | Some version, Some size -> Ok (matmul ~version ~size ?flow ())
          | _ -> Error (Printf.sprintf "unknown preset %s" name))
        | _ -> Error (Printf.sprintf "unknown preset %s" name))
