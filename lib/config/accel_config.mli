(** Accelerator description — the "accelerator" half of the
    configuration file (paper Fig. 5 and Sec. III-B).

    Captures the I/O contract of the accelerator, not its internals:
    supported operation and tile dimensions, data type, DMA parameters,
    the micro-ISA ({!Opcode.map}), the valid dataflows
    ({!Opcode.flow}s), and which flow to use. *)

type dma_config = {
  dma_id : int;
  input_address : int;
  input_buffer_size : int;  (** bytes *)
  output_address : int;
  output_buffer_size : int;  (** bytes *)
}

type engine_kind =
  | Matmul_engine of Accel_matmul.version * int
      (** Table I engines: version and supported tile edge *)
  | Conv_engine  (** the Sec. IV-D Conv2D engine *)

type t = {
  accel_name : string;
  engine : engine_kind;
  op_kind : string;  (** linalg op implemented: ["matmul"] or ["conv_2d_nchw_fchw"] *)
  data_type : Ty.dtype;
  accel_dims : int list;
      (** per iteration-space dimension: the supported tile extent, or
          0 when the accelerator absorbs/ignores that dimension (the
          tiling pass then leaves it untiled subject to
          [buffer_capacity_elems]) *)
  flexible : bool;
      (** v4-style: tile extents may be any multiple of the accel_dims
          granularity that fits the buffers *)
  buffer_capacity_elems : int;  (** per-operand internal buffer, in elements *)
  frequency_mhz : float;
  ops_per_cycle : float;  (** Table I throughput *)
  dma : dma_config;
  opcode_map : Opcode.map;
  opcode_flows : (string * Opcode.flow) list;  (** named flows: Ns/As/Bs/Cs/... *)
  selected_flow : string;
  init_opcodes : string list;  (** opcode keys sent once per kernel *)
}

val n_args : t -> int
(** Number of [linalg.generic] operands of the supported op (3 for both
    matmul and conv). *)

val selected_flow_exn : t -> Opcode.flow
val flow_exn : t -> string -> Opcode.flow
val with_flow : t -> string -> t
(** Select a different flow (validated). *)

val validate : t -> (unit, string) result
(** Full consistency check: known op kind, dims arity, opcode map/flow
    validity, selected flow exists, init opcodes defined, buffer
    capacities consistent with the engine. *)

val make_device : ?tracer:Trace.t -> t -> Accel_device.t
(** Instantiate the simulator model this config describes. *)

val attach : Soc.t -> t -> Dma_engine.t
(** Create the device and register a DMA engine under [dma.dma_id] with
    region capacities from the config. *)

val of_json_result : Json.t -> (t, string) result
(** Parse and {!validate} a configuration. Every malformed input — a
    missing or mistyped field, bad opcode syntax, an unknown engine or
    data type, a failed consistency check — yields [Error] with a
    field-qualified message ("accel_config.dma.id: ..."), never an
    exception. *)

val of_json : Json.t -> t
(** As {!of_json_result}; raises [Failure] with the same structured
    message on malformed input. *)

val to_json : t -> Json.t
