let ( let* ) = Result.bind

let parse_string_result text =
  match Json.of_string text with
  | exception Json.Parse_error msg -> Error ("config: " ^ msg)
  | json ->
    let section name =
      match Json.member_opt name json with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "config: missing \"%s\" section" name)
    in
    let* cpu = section "cpu" in
    let* host = Host_config.of_json_result cpu in
    let* accel_json = section "accelerator" in
    let* accel = Accel_config.of_json_result accel_json in
    Ok (host, accel)

let parse_string text =
  match parse_string_result text with Ok r -> r | Error msg -> failwith msg

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file_result path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text -> parse_string_result text

let parse_file path = parse_string (read_file path)

let to_string host accel =
  Json.to_string ~indent:2
    (Json.Obj
       [ ("cpu", Host_config.to_json host); ("accelerator", Accel_config.to_json accel) ])

let write_file path host accel =
  let oc = open_out_bin path in
  output_string oc (to_string host accel);
  output_char oc '\n';
  close_out oc
