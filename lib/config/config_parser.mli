(** Configuration-file front end (step 2 of the compiler flow,
    Fig. 4): parses the JSON file of Fig. 5 into validated host and
    accelerator descriptions, and can serialise them back. *)

val parse_string_result : string -> (Host_config.t * Accel_config.t, string) result
(** Every malformed input — invalid JSON, a missing section, a missing
    or mistyped field, a failed consistency check — yields [Error] with
    a field-qualified message, never an exception. *)

val parse_string : string -> Host_config.t * Accel_config.t
(** As {!parse_string_result}; raises [Failure] with the same
    structured message. *)

val parse_file_result : string -> (Host_config.t * Accel_config.t, string) result
(** [Error] additionally covers unreadable files. *)

val parse_file : string -> Host_config.t * Accel_config.t

val to_string : Host_config.t -> Accel_config.t -> string
(** Pretty-printed JSON, parseable by {!parse_string}. *)

val write_file : string -> Host_config.t -> Accel_config.t -> unit
