(** Host-CPU system description — the "cpu" half of the configuration
    file (paper Fig. 5): clock frequency and the cache hierarchy the
    tiling pass exploits. *)

type t = {
  cpu_name : string;
  frequency_mhz : float;
  caches : Cache.geometry list;  (** ordered L1 outward *)
}

val pynq_z2 : t
(** The paper's evaluation platform: Cortex-A9 at 650 MHz with 32 KiB
    L1 and 512 KiB L2. *)

val of_json_result : Json.t -> (t, string) result
(** Parse the ["cpu"] object. Malformed input yields [Error] with a
    field-qualified message ("cpu.frequency_mhz: ..."). *)

val of_json : Json.t -> t
(** As {!of_json_result}; raises [Failure] with the same structured
    message on malformed input. *)

val to_json : t -> Json.t

val last_level_cache_bytes : t -> int
(** Size of the outermost cache (0 when there is none) — the capacity
    the cache-aware tiling targets. *)

val l1_bytes : t -> int
