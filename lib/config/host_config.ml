type t = {
  cpu_name : string;
  frequency_mhz : float;
  caches : Cache.geometry list;
}

let pynq_z2 =
  {
    cpu_name = "cortex-a9";
    frequency_mhz = 650.0;
    caches = [ Cache.cortex_a9_l1; Cache.cortex_a9_l2 ];
  }

let geometry_of_json json =
  {
    Cache.size_bytes = 1024 * Json.to_int (Json.member "size_kb" json);
    line_bytes =
      (match Json.member_opt "line_bytes" json with
      | Some v -> Json.to_int v
      | None -> 32);
    assoc = Json.to_int (Json.member "assoc" json);
  }

let of_json_result json =
  let ( let* ) = Result.bind in
  let field name convert =
    match Json.member_opt name json with
    | None -> Error (Printf.sprintf "cpu.%s: missing field" name)
    | Some v -> (
      match convert v with
      | ok -> Ok ok
      | exception Json.Type_error msg -> Error (Printf.sprintf "cpu.%s: %s" name msg))
  in
  match json with
  | Json.Obj _ ->
    let* cpu_name =
      match Json.member_opt "name" json with
      | None -> Ok "cpu"
      | Some v -> (
        match Json.to_str v with
        | s -> Ok s
        | exception Json.Type_error msg -> Error ("cpu.name: " ^ msg))
    in
    let* frequency_mhz = field "frequency_mhz" Json.to_float in
    let* caches =
      field "caches" (fun v -> List.map geometry_of_json (Json.to_list v))
    in
    Ok { cpu_name; frequency_mhz; caches }
  | _ -> Error "cpu: expected a JSON object"

let of_json json =
  match of_json_result json with Ok host -> host | Error msg -> failwith msg

let to_json t =
  Json.Obj
    [
      ("name", Json.String t.cpu_name);
      ("frequency_mhz", Json.Float t.frequency_mhz);
      ( "caches",
        Json.List
          (List.map
             (fun (g : Cache.geometry) ->
               Json.Obj
                 [
                   ("size_kb", Json.Int (g.size_bytes / 1024));
                   ("line_bytes", Json.Int g.line_bytes);
                   ("assoc", Json.Int g.assoc);
                 ])
             t.caches) );
    ]

let last_level_cache_bytes t =
  match List.rev t.caches with [] -> 0 | g :: _ -> g.Cache.size_bytes

let l1_bytes t = match t.caches with [] -> 0 | g :: _ -> g.Cache.size_bytes
