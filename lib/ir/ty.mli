(** Types of the mini-MLIR IR.

    The subset needed by AXI4MLIR: scalar element types, statically-shaped
    memrefs with strided layouts (the C struct of Fig. 3 of the paper,
    restricted to static sizes/strides/offset), and function types. *)

type dtype = F32 | F64 | I1 | I8 | I32 | I64 | Index

type memref = {
  shape : int list;  (** one extent per dimension; rank = length *)
  elem : dtype;
  offset : int;  (** static offset in elements, or {!dynamic_offset} *)
  strides : int list;  (** one stride per dimension, in elements *)
}

type t =
  | Scalar of dtype
  | Memref of memref
  | Func of t list * t list  (** argument types, result types *)
  | Token
      (** [!accel.token]: the handle returned by a non-blocking
          [accel.start_send]/[accel.start_recv] and consumed (exactly
          once) by [accel.wait]. *)

val f32 : t
val f64 : t
val i1 : t
val i8 : t
val i32 : t
val i64 : t
val index : t

val token : t
(** [!accel.token], see {!Token}. *)

val dtype_size_bytes : dtype -> int
(** Storage size of one element. [Index] is modelled as 8 bytes. *)

val dynamic_offset : int
(** Sentinel for a loop-variant subview offset (printed as [?]). *)

val dynamic_subview_type : memref -> sizes:int list -> t
(** Type of a subview with dynamic (SSA-value) offsets and the given
    static sizes: shape becomes [sizes], strides are inherited, offset
    becomes {!dynamic_offset}. *)

val identity_strides : int list -> int list
(** Row-major strides for a shape, e.g. [[4; 4] -> [4; 1]]. *)

val memref : ?offset:int -> ?strides:int list -> int list -> dtype -> t
(** Build a memref type; strides default to row-major, offset to 0. *)

val memref_of : t -> memref
(** Project the memref payload. Raises [Invalid_argument] on other types. *)

val rank : memref -> int
val num_elements : memref -> int

val is_identity_layout : memref -> bool
(** True when offset is 0 and strides are exactly row-major. *)

val is_contiguous_innermost : memref -> bool
(** True when the last-dimension stride is 1 (rank 0 counts as true):
    the precondition for the paper's specialised [memcpy] copy
    (Sec. IV-B). *)

val subview_type : memref -> offsets:int list -> sizes:int list -> t
(** Type of a static subview taking [sizes] elements starting at
    [offsets] (unit step): shape becomes [sizes], strides are inherited,
    offset is accumulated. Raises [Invalid_argument] when ranks mismatch
    or the subview exceeds the source extents. *)

val dtype_to_string : dtype -> string
val to_string : t -> string
(** MLIR-like rendering, e.g.
    [memref<4x4xf32, strided<[80, 1], offset: 42>>]. *)

val equal : t -> t -> bool
val dtype_of_string : string -> dtype option
