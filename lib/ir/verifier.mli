(** IR verification.

    Structural SSA checks (definitions dominate uses, unique
    definitions) plus a registry of per-operation verifiers that dialect
    libraries populate for their ops. *)

type error = {
  failing_op : string;  (** name of the op the check failed on *)
  reason : string;  (** what was wrong, without the op prefix *)
}

val error_to_string : error -> string
(** ["op %s: %s"] — the historical flat message format. *)

val register_op_verifier : string -> (Ir.op -> (unit, string) result) -> unit
(** Register a verifier for an op name. Registering twice replaces the
    previous verifier (used by tests). *)

val verify_structured : Ir.op -> (unit, error) result
(** Verify an op tree: SSA structure first, then every registered
    per-op verifier (pre-order). Reports the failing op separately from
    the reason, so callers (e.g. {!Pass.run_pipeline}) can attach the
    offending op to their own diagnostics. *)

val verify : Ir.op -> (unit, string) result
(** As {!verify_structured}, flattened with {!error_to_string}. *)

val verify_exn : Ir.op -> unit
(** Raises [Failure] with the verification error. *)
