type dtype = F32 | F64 | I1 | I8 | I32 | I64 | Index

type memref = {
  shape : int list;
  elem : dtype;
  offset : int;
  strides : int list;
}

type t = Scalar of dtype | Memref of memref | Func of t list * t list | Token

let f32 = Scalar F32
let f64 = Scalar F64
let i1 = Scalar I1
let i8 = Scalar I8
let i32 = Scalar I32
let i64 = Scalar I64
let index = Scalar Index
let token = Token

let dtype_size_bytes = function
  | F32 | I32 -> 4
  | F64 | I64 | Index -> 8
  | I8 | I1 -> 1

let identity_strides shape =
  (* Row-major: stride of dim i is the product of all later extents. *)
  let rec go = function
    | [] -> []
    | [ _ ] -> [ 1 ]
    | _ :: rest ->
      let strides = go rest in
      (match strides, rest with
      | s :: _, d :: _ -> (s * d) :: strides
      | _, _ -> assert false)
  in
  go shape

let memref ?(offset = 0) ?strides shape elem =
  let strides = match strides with Some s -> s | None -> identity_strides shape in
  if List.length strides <> List.length shape then
    invalid_arg "Ty.memref: strides rank does not match shape rank";
  Memref { shape; elem; offset; strides }

let memref_of = function
  | Memref m -> m
  | Scalar _ | Func _ | Token -> invalid_arg "Ty.memref_of: not a memref type"

let rank m = List.length m.shape
let num_elements m = List.fold_left ( * ) 1 m.shape

let dynamic_offset = min_int

let dynamic_subview_type m ~sizes =
  if List.length sizes <> rank m then invalid_arg "Ty.dynamic_subview_type: rank mismatch";
  Memref { shape = sizes; elem = m.elem; offset = dynamic_offset; strides = m.strides }

let is_identity_layout m = m.offset = 0 && m.strides = identity_strides m.shape

let is_contiguous_innermost m =
  match List.rev m.strides with [] -> true | s :: _ -> s = 1

let subview_type m ~offsets ~sizes =
  if List.length offsets <> rank m || List.length sizes <> rank m then
    invalid_arg "Ty.subview_type: rank mismatch";
  List.iter2
    (fun (off, size) extent ->
      if off < 0 || size < 0 || off + size > extent then
        invalid_arg
          (Printf.sprintf "Ty.subview_type: slice [%d, %d) exceeds extent %d" off
             (off + size) extent))
    (List.combine offsets sizes)
    m.shape;
  let offset =
    List.fold_left2 (fun acc off stride -> acc + (off * stride)) m.offset offsets m.strides
  in
  Memref { shape = sizes; elem = m.elem; offset; strides = m.strides }

let dtype_to_string = function
  | F32 -> "f32"
  | F64 -> "f64"
  | I1 -> "i1"
  | I8 -> "i8"
  | I32 -> "i32"
  | I64 -> "i64"
  | Index -> "index"

let dtype_of_string = function
  | "f32" -> Some F32
  | "f64" -> Some F64
  | "i1" -> Some I1
  | "i8" -> Some I8
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "index" -> Some Index
  | _ -> None

let rec to_string = function
  | Scalar d -> dtype_to_string d
  | Memref m ->
    let dims = String.concat "" (List.map (fun d -> string_of_int d ^ "x") m.shape) in
    let layout =
      if is_identity_layout m then ""
      else
        Printf.sprintf ", strided<[%s], offset: %s>"
          (String.concat ", " (List.map string_of_int m.strides))
          (if m.offset = min_int then "?" else string_of_int m.offset)
    in
    Printf.sprintf "memref<%s%s%s>" dims (dtype_to_string m.elem) layout
  | Func (args, results) ->
    let list l = String.concat ", " (List.map to_string l) in
    Printf.sprintf "(%s) -> (%s)" (list args) (list results)
  | Token -> "!accel.token"

let equal a b = a = b
