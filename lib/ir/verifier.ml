type error = { failing_op : string; reason : string }

let error_to_string e = Printf.sprintf "op %s: %s" e.failing_op e.reason

let registry : (string, Ir.op -> (unit, string) result) Hashtbl.t = Hashtbl.create 64

let register_op_verifier name f = Hashtbl.replace registry name f

let ( let* ) r f = Result.bind r f

(* SSA check: walk the op tree keeping the set of visible value ids.
   Values defined in enclosing scopes are visible in nested regions
   (MLIR's default region semantics, which all our dialects use). *)
let check_ssa root =
  let defined : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* [ctx] is the op owning the definition site, so duplicate block-arg
     and result definitions alike point at a concrete op. *)
  let define ctx (v : Ir.value) =
    if Hashtbl.mem defined v.vid then
      Error { failing_op = ctx; reason = Printf.sprintf "value %%v%d defined twice" v.vid }
    else begin
      Hashtbl.add defined v.vid ();
      Ok ()
    end
  in
  let rec check_all f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      check_all f rest
  in
  let rec check_op (o : Ir.op) =
    let* () =
      check_all
        (fun (v : Ir.value) ->
          if Hashtbl.mem defined v.vid then Ok ()
          else
            Error
              {
                failing_op = o.name;
                reason = Printf.sprintf "use of undefined value %%v%d" v.vid;
              })
        o.operands
    in
    (* Regions see enclosing definitions but results only become visible
       after the op, so verify regions before defining results. *)
    let* () = check_all (check_region o.name) o.regions in
    check_all (define o.name) o.results
  and check_region ctx blocks = check_all (check_block ctx) blocks
  and check_block ctx (b : Ir.block) =
    let* () = check_all (define ctx) b.bargs in
    check_all check_op b.body
  in
  check_op root

(* Token linearity: every !accel.token-typed result must be consumed by
   exactly one op (in practice accel.wait / the dma_wait runtime call).
   Tokens are affine handles to in-flight hardware transfers — dropping
   one leaks a transfer the program never synchronised with, and waiting
   twice double-frees it. This is a whole-function check, so it lives
   here rather than in a per-op verifier. *)
let check_token_linearity root =
  let producers : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let uses : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Ir.walk
    (fun (o : Ir.op) ->
      List.iter
        (fun (v : Ir.value) ->
          if Ty.equal v.vty Ty.token then Hashtbl.replace producers v.vid o.name)
        o.results;
      List.iter
        (fun (v : Ir.value) ->
          if Ty.equal v.vty Ty.token then
            Hashtbl.replace uses v.vid
              (1 + Option.value ~default:0 (Hashtbl.find_opt uses v.vid)))
        o.operands)
    root;
  Hashtbl.fold
    (fun vid producer acc ->
      let* () = acc in
      match Option.value ~default:0 (Hashtbl.find_opt uses vid) with
      | 0 ->
        Error
          {
            failing_op = producer;
            reason = Printf.sprintf "token %%v%d is never waited" vid;
          }
      | 1 -> Ok ()
      | n ->
        Error
          {
            failing_op = producer;
            reason = Printf.sprintf "token %%v%d is consumed %d times (must be exactly once)" vid n;
          })
    producers (Ok ())

let verify_structured root =
  let* () = check_ssa root in
  let* () = check_token_linearity root in
  let failure = ref None in
  (try
     Ir.walk
       (fun o ->
         match Hashtbl.find_opt registry o.name with
         | None -> ()
         | Some f -> (
           match f o with
           | Ok () -> ()
           | Error msg ->
             failure := Some { failing_op = o.name; reason = msg };
             raise Exit))
       root
   with Exit -> ());
  match !failure with None -> Ok () | Some e -> Error e

let verify root = Result.map_error error_to_string (verify_structured root)

let verify_exn root =
  match verify root with Ok () -> () | Error msg -> failwith ("IR verification failed: " ^ msg)
