type t = { pass_name : string; run : Ir.op -> Ir.op }

let make pass_name run = { pass_name; run }

type options = { verify_each : bool; dump_each : bool }

let default_options = { verify_each = true; dump_each = false }

type pass_stat = {
  st_pass : string;
  st_seconds : float;
  st_ops_before : int;
  st_ops_after : int;
}

exception Pass_failure of { pass : string; failing_op : string; message : string }

let () =
  Printexc.register_printer (function
    | Pass_failure { pass; failing_op; message } ->
      Some
        (Printf.sprintf "Pass_failure(pass %s, op %s: %s)" pass failing_op message)
    | _ -> None)

let count_all = Ir.count_ops (fun _ -> true)

let run_pipeline ?(options = default_options) ?stats ?(tracer = Trace.noop) passes root
    =
  let record st =
    match stats with None -> () | Some acc -> acc := !acc @ [ st ]
  in
  List.fold_left
    (fun ir pass ->
      let ops_before = count_all ir in
      let t0 = Sys.time () in
      let ir = pass.run ir in
      let seconds = Sys.time () -. t0 in
      let ops_after = count_all ir in
      Metrics.incr "compiler.pass_runs" ~labels:[ ("pass", pass.pass_name) ];
      Metrics.observe "compiler.pass_us"
        ~labels:[ ("pass", pass.pass_name) ]
        (seconds *. 1e6);
      Metrics.observe "compiler.pass_ops_after"
        ~labels:[ ("pass", pass.pass_name) ]
        (float_of_int ops_after);
      (* Compile-side events live on their own track with real
         (process-time) microsecond stamps — the simulated clock has not
         started yet. *)
      Trace.complete tracer ~cat:"pass" ~track:Trace.compile_track
        ~args:
          [ ("ops_before", Trace.Int ops_before); ("ops_after", Trace.Int ops_after) ]
        ~ts:(t0 *. 1e6) ~dur:(seconds *. 1e6) pass.pass_name;
      record
        {
          st_pass = pass.pass_name;
          st_seconds = seconds;
          st_ops_before = ops_before;
          st_ops_after = ops_after;
        };
      if options.dump_each then
        Printf.eprintf "// ----- IR after %s -----\n%s\n" pass.pass_name
          (Printer.to_generic ir);
      if options.verify_each then begin
        match Verifier.verify_structured ir with
        | Ok () -> ()
        | Error { Verifier.failing_op; reason } ->
          if not options.dump_each then
            (* dump_each already printed this module above *)
            Printf.eprintf "// ----- IR after failing pass %s -----\n%s\n"
              pass.pass_name (Printer.to_generic ir);
          raise (Pass_failure { pass = pass.pass_name; failing_op; message = reason })
      end;
      ir)
    root passes

let report_stats stats =
  let buf = Buffer.create 512 in
  let total = List.fold_left (fun acc s -> acc +. s.st_seconds) 0.0 stats in
  let rule = String.make 68 '-' in
  Buffer.add_string buf ("===" ^ rule ^ "===\n");
  Buffer.add_string buf "                       Pass execution timing report\n";
  Buffer.add_string buf ("===" ^ rule ^ "===\n");
  Buffer.add_string buf (Printf.sprintf "  Total Execution Time: %.4f seconds\n\n" total);
  Buffer.add_string buf "  ----Wall Time----  ----Ops (before -> after)----  ----Pass----\n";
  List.iter
    (fun s ->
      let pct = if total > 0.0 then 100.0 *. s.st_seconds /. total else 0.0 in
      Buffer.add_string buf
        (Printf.sprintf "  %8.4f (%5.1f%%)  %6d -> %-6d %15s  %s\n" s.st_seconds pct
           s.st_ops_before s.st_ops_after "" s.st_pass))
    stats;
  Buffer.add_string buf
    (Printf.sprintf "  %8.4f (100.0%%)  %31s  Total\n" total "");
  Buffer.contents buf
