exception Parse_error of string

type state = {
  src : string;
  mutable pos : int;
  values : (string, Ir.value) Hashtbl.t;  (* %N -> value *)
}

let location st =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (st.pos - 1) (String.length st.src - 1) do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st fmt =
  let line, col = location st in
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d, column %d: %s" line col s))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    (* //-style comment to end of line *)
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | Some _ | None -> ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st "expected '%c', found '%c'" c c'
  | None -> fail st "expected '%c', found end of input" c

let accept st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c ->
    advance st;
    true
  | Some _ | None -> false

let accept_string st s =
  skip_ws st;
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let expect_string st s = if not (accept_string st s) then fail st "expected '%s'" s

let is_id_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
  | _ -> false

let scan_id st =
  skip_ws st;
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_id_char c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  if st.pos = start then fail st "expected identifier";
  String.sub st.src start (st.pos - start)

(* Peek an identifier without consuming it. *)
let peek_id st =
  skip_ws st;
  let saved = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_id_char c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  let id = String.sub st.src saved (st.pos - saved) in
  st.pos <- saved;
  if id = "" then None else Some id

let scan_int st =
  skip_ws st;
  let start = st.pos in
  if accept st '-' then ();
  let digits_start = st.pos in
  let hex =
    match (peek st, peek2 st) with
    | Some '0', Some ('x' | 'X') ->
      advance st;
      advance st;
      true
    | _ -> false
  in
  let is_digit c =
    if hex then
      (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
    else c >= '0' && c <= '9'
  in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  if st.pos = digits_start then fail st "expected integer";
  match int_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some v -> v
  | None -> fail st "invalid integer literal"

(* Scan a number that may be a float; returns either Int or Float attr. *)
let scan_number st =
  skip_ws st;
  let start = st.pos in
  if accept st '-' then ();
  let hex =
    match (peek st, peek2 st) with
    | Some '0', Some ('x' | 'X') ->
      advance st;
      advance st;
      true
    | _ -> false
  in
  let rec digits () =
    match peek st with
    | Some ('0' .. '9') ->
      advance st;
      digits ()
    | Some ('a' .. 'f' | 'A' .. 'F') when hex ->
      advance st;
      digits ()
    | Some _ | None -> ()
  in
  digits ();
  let is_float = ref false in
  if not hex then begin
    (match peek st with
    | Some '.' ->
      is_float := true;
      advance st;
      digits ()
    | Some _ | None -> ());
    match peek st with
    | Some ('e' | 'E') -> (
      (* Only treat e/E as an exponent when followed by digits or a sign. *)
      match peek2 st with
      | Some ('0' .. '9' | '+' | '-') ->
        is_float := true;
        advance st;
        (match peek st with
        | Some ('+' | '-') -> advance st
        | Some _ | None -> ());
        digits ()
      | Some _ | None -> ())
    | Some _ | None -> ()
  end;
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Attribute.Float f
    | None -> fail st "invalid float literal %s" text
  else
    match int_of_string_opt text with
    | Some i -> Attribute.Int i
    | None -> fail st "invalid integer literal %s" text

let scan_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some c -> fail st "invalid escape \\%c" c
      | None -> fail st "unterminated escape");
      advance st;
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty st =
  skip_ws st;
  if accept st '(' then begin
    (* function type: (tys) -> (tys) *)
    let args = parse_ty_list st ')' in
    expect_string st "->";
    expect st '(';
    let results = parse_ty_list st ')' in
    Ty.Func (args, results)
  end
  else if accept st '!' then begin
    (* dialect type: the only one we model is !accel.token *)
    let name = scan_id st in
    if name = "accel.token" then Ty.Token
    else fail st "unknown dialect type !%s" name
  end
  else begin
    match peek_id st with
    | Some "memref" ->
      let _ = scan_id st in
      expect st '<';
      (* dims: INT 'x' ... then dtype *)
      let rec dims acc =
        skip_ws st;
        match peek st with
        | Some ('0' .. '9') ->
          let d = scan_int st in
          (match peek st with
          | Some 'x' ->
            advance st;
            dims (d :: acc)
          | _ -> fail st "expected 'x' after memref dimension")
        | Some _ | None -> List.rev acc
      in
      let shape = dims [] in
      let dtype_name = scan_id st in
      let elem =
        match Ty.dtype_of_string dtype_name with
        | Some d -> d
        | None -> fail st "unknown element type %s" dtype_name
      in
      let layout =
        if accept st ',' then begin
          expect_string st "strided";
          expect st '<';
          expect st '[';
          let strides = parse_int_list st ']' in
          expect st ',';
          expect_string st "offset";
          expect st ':';
          let offset = if accept st '?' then Ty.dynamic_offset else scan_int st in
          expect st '>';
          Some (strides, offset)
        end
        else None
      in
      expect st '>';
      (match layout with
      | None -> Ty.memref shape elem
      | Some (strides, offset) -> Ty.memref ~offset ~strides shape elem)
    | Some name -> (
      let _ = scan_id st in
      match Ty.dtype_of_string name with
      | Some d -> Ty.Scalar d
      | None -> fail st "unknown type %s" name)
    | None -> fail st "expected a type"
  end

and parse_ty_list st close =
  skip_ws st;
  if accept st close then []
  else begin
    let rec go acc =
      let ty = parse_ty st in
      if accept st ',' then go (ty :: acc)
      else begin
        expect st close;
        List.rev (ty :: acc)
      end
    in
    go []
  end

and parse_int_list st close =
  skip_ws st;
  if accept st close then []
  else begin
    let rec go acc =
      let v = scan_int st in
      if accept st ',' then go (v :: acc)
      else begin
        expect st close;
        List.rev (v :: acc)
      end
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Affine maps                                                         *)
(* ------------------------------------------------------------------ *)

(* affine_map<(d0, d1) -> (d0 * 2 + 1, d1)>; dim names are positional. *)
let parse_affine_map st =
  expect st '<';
  expect st '(';
  let rec dim_names acc =
    skip_ws st;
    if accept st ')' then List.rev acc
    else begin
      let name = scan_id st in
      if accept st ',' then dim_names (name :: acc)
      else begin
        expect st ')';
        List.rev (name :: acc)
      end
    end
  in
  let names = dim_names [] in
  let n_dims = List.length names in
  let dim_index name = Util.list_index (fun n -> n = name) names in
  expect_string st "->";
  expect st '(';
  (* expr := term (('+') term)* ; term := factor (('*') factor)* ;
     factor := INT | ID | '(' expr ')' *)
  let rec parse_expr () =
    let lhs = parse_term () in
    let rec go lhs = if accept st '+' then go (Affine_map.Add (lhs, parse_term ())) else lhs in
    go lhs
  and parse_term () =
    let lhs = parse_factor () in
    let rec go lhs = if accept st '*' then go (Affine_map.Mul (lhs, parse_factor ())) else lhs in
    go lhs
  and parse_factor () =
    skip_ws st;
    match peek st with
    | Some '(' ->
      advance st;
      let e = parse_expr () in
      expect st ')';
      e
    | Some ('0' .. '9' | '-') -> Affine_map.Cst (scan_int st)
    | Some _ -> (
      let id = scan_id st in
      match dim_index id with
      | Some i -> Affine_map.Dim i
      | None -> fail st "unknown affine dimension %s" id)
    | None -> fail st "expected affine expression"
  in
  let rec exprs acc =
    skip_ws st;
    if accept st ')' then List.rev acc
    else begin
      let e = parse_expr () in
      if accept st ',' then exprs (e :: acc)
      else begin
        expect st ')';
        List.rev (e :: acc)
      end
    end
  in
  let results = exprs [] in
  expect st '>';
  Affine_map.make ~n_dims results

(* Raw scan from after '<' to the matching '>' for opcode_map/flow whose
   payloads never contain '<' or '>'. *)
let scan_angle_payload st =
  expect st '<';
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some '>' ->
      let payload = String.sub st.src start (st.pos - start) in
      advance st;
      payload
    | Some _ ->
      advance st;
      go ()
    | None -> fail st "unterminated '<...>'"
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_attr st =
  skip_ws st;
  match peek st with
  | Some '"' -> Attribute.Str (scan_string st)
  | Some ('0' .. '9' | '-') -> scan_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if accept st ']' then Attribute.Array []
    else if peek st = Some '#' then begin
      (* iterator-type style string list: [#parallel, #reduction] *)
      let rec go acc =
        expect st '#';
        let id = scan_id st in
        if accept st ',' then go (id :: acc)
        else begin
          expect st ']';
          List.rev (id :: acc)
        end
      in
      Attribute.Strs (go [])
    end
    else begin
      let rec go acc =
        let a = parse_attr st in
        if accept st ',' then go (a :: acc)
        else begin
          expect st ']';
          List.rev (a :: acc)
        end
      in
      Attribute.Array (go [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if accept st '}' then Attribute.Dict []
    else begin
      let rec go acc =
        let key = scan_id st in
        expect st '=';
        let v = parse_attr st in
        if accept st ',' then go ((key, v) :: acc)
        else begin
          expect st '}';
          List.rev ((key, v) :: acc)
        end
      in
      Attribute.Dict (go [])
    end
  | Some _ -> (
    let id = scan_id st in
    match id with
    | "unit" -> Attribute.Unit
    | "true" -> Attribute.Bool true
    | "false" -> Attribute.Bool false
    | "type" ->
      expect st '(';
      let ty = parse_ty st in
      expect st ')';
      Attribute.Type_attr ty
    | "dense" ->
      expect st '<';
      expect st '[';
      let ints = parse_int_list st ']' in
      expect st '>';
      Attribute.Ints ints
    | "affine_map" -> Attribute.Affine (parse_affine_map st)
    | "opcode_map" ->
      let payload = scan_angle_payload st in
      (try Attribute.Opcode_map (Opcode.parse_map payload)
       with Opcode.Syntax_error msg -> fail st "in opcode_map: %s" msg)
    | "opcode_flow" ->
      let payload = scan_angle_payload st in
      (try Attribute.Opcode_flow (Opcode.parse_flow payload)
       with Opcode.Syntax_error msg -> fail st "in opcode_flow: %s" msg)
    | other -> fail st "unknown attribute '%s'" other)
  | None -> fail st "expected an attribute"

(* ------------------------------------------------------------------ *)
(* Values and operations                                               *)
(* ------------------------------------------------------------------ *)

let scan_value_name st =
  expect st '%';
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_id_char c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  if st.pos = start then fail st "expected value name after %%";
  "%" ^ String.sub st.src start (st.pos - start)

let lookup_value st name =
  match Hashtbl.find_opt st.values name with
  | Some v -> v
  | None -> fail st "use of undefined value %s" name

let bind_value st name ty =
  if Hashtbl.mem st.values name then fail st "redefinition of value %s" name;
  let v = Ir.fresh_value ty in
  Hashtbl.add st.values name v;
  v

let rec parse_op st : Ir.op =
  skip_ws st;
  (* results *)
  let result_names =
    if peek st = Some '%' then begin
      let rec go acc =
        let name = scan_value_name st in
        if accept st ',' then go (name :: acc) else List.rev (name :: acc)
      in
      let names = go [] in
      expect st '=';
      names
    end
    else []
  in
  let op_name = scan_string st in
  expect st '(';
  let operand_names =
    if accept st ')' then []
    else begin
      let rec go acc =
        let name = scan_value_name st in
        if accept st ',' then go (name :: acc)
        else begin
          expect st ')';
          List.rev (name :: acc)
        end
      in
      go []
    end
  in
  (* optional regions *)
  let regions =
    skip_ws st;
    if peek st = Some '(' then begin
      advance st;
      let rec go acc =
        let r = parse_region st in
        if accept st ',' then go (r :: acc)
        else begin
          expect st ')';
          List.rev (r :: acc)
        end
      in
      go []
    end
    else []
  in
  (* optional attrs *)
  let attrs =
    skip_ws st;
    if peek st = Some '{' then begin
      advance st;
      skip_ws st;
      if accept st '}' then []
      else begin
        let rec go acc =
          let key = scan_id st in
          expect st '=';
          let v = parse_attr st in
          if accept st ',' then go ((key, v) :: acc)
          else begin
            expect st '}';
            List.rev ((key, v) :: acc)
          end
        in
        go []
      end
    end
    else []
  in
  expect st ':';
  expect st '(';
  let operand_tys = parse_ty_list st ')' in
  expect_string st "->";
  expect st '(';
  let result_tys = parse_ty_list st ')' in
  if List.length operand_tys <> List.length operand_names then
    fail st "op %s: %d operands but %d operand types" op_name (List.length operand_names)
      (List.length operand_tys);
  if List.length result_tys <> List.length result_names then
    fail st "op %s: %d results but %d result types" op_name (List.length result_names)
      (List.length result_tys);
  let operands = List.map (lookup_value st) operand_names in
  List.iter2
    (fun (v : Ir.value) ty ->
      if not (Ty.equal v.vty ty) then
        fail st "op %s: operand type mismatch: %s vs %s" op_name (Ty.to_string v.vty)
          (Ty.to_string ty))
    operands operand_tys;
  let results = List.map2 (fun name ty -> bind_value st name ty) result_names result_tys in
  Ir.op op_name ~operands ~results ~attrs ~regions

and parse_region st : Ir.region =
  expect st '{';
  (* optional single block header: ^bb(%0: ty, ...): *)
  skip_ws st;
  let args =
    if peek st = Some '^' then begin
      advance st;
      let _label = scan_id st in
      expect st '(';
      let rec go acc =
        skip_ws st;
        if accept st ')' then List.rev acc
        else begin
          let name = scan_value_name st in
          expect st ':';
          let ty = parse_ty st in
          let v = bind_value st name ty in
          if accept st ',' then go (v :: acc)
          else begin
            expect st ')';
            List.rev (v :: acc)
          end
        end
      in
      let args = go [] in
      expect st ':';
      args
    end
    else []
  in
  let rec ops acc =
    skip_ws st;
    if accept st '}' then List.rev acc else ops (parse_op st :: acc)
  in
  let body = ops [] in
  [ Ir.block ~args body ]

let with_state src f =
  let st = { src; pos = 0; values = Hashtbl.create 64 } in
  let result = f st in
  skip_ws st;
  (match peek st with
  | Some c -> fail st "trailing content starting with '%c'" c
  | None -> ());
  result

let parse_op src = with_state src parse_op
let parse_type src = with_state src parse_ty
let parse_attribute src = with_state src parse_attr
