(** Pass manager: named module-to-module transformations with optional
    inter-pass verification, IR dumping, per-pass timing and trace
    emission, mirroring MLIR's [PassManager] (and its [-mlir-timing]
    instrumentation). *)

type t = { pass_name : string; run : Ir.op -> Ir.op }

val make : string -> (Ir.op -> Ir.op) -> t

type options = {
  verify_each : bool;  (** run {!Verifier.verify_structured} after every pass *)
  dump_each : bool;  (** print generic IR after every pass to stderr *)
}

val default_options : options
(** [verify_each = true], [dump_each = false]. *)

type pass_stat = {
  st_pass : string;  (** pass name *)
  st_seconds : float;  (** process time spent in the pass ([Sys.time]) *)
  st_ops_before : int;  (** op count entering the pass *)
  st_ops_after : int;  (** op count leaving the pass *)
}

exception
  Pass_failure of { pass : string; failing_op : string; message : string }
(** Raised when post-pass verification fails: the pass that produced the
    invalid IR, the op the verifier rejected, and the reason. The module
    as left by the failing pass is dumped to stderr. *)

val run_pipeline :
  ?options:options -> ?stats:pass_stat list ref -> ?tracer:Trace.t -> t list -> Ir.op -> Ir.op
(** Fold the module through [passes]. When [stats] is given, one
    {!pass_stat} is appended per pass (in execution order). When
    [tracer] is given, each pass emits a complete event on
    {!Trace.compile_track}, stamped with {e process-time} microseconds
    (the simulated clock does not exist at compile time). *)

val report_stats : pass_stat list -> string
(** Render stats like MLIR's [-mlir-timing] report: per-pass wall time,
    share of the total, and op-count deltas. *)
